// hapd wire protocol: length-prefixed frames over a byte stream.
//
// A frame is a 4-byte little-endian unsigned body length followed by exactly
// that many bytes of UTF-8 JSON (one request or response object). The length
// prefix makes framing trivial to validate before any payload is touched:
//
//   [u32 LE length][length bytes of JSON]
//
// Hard limits (enforced BEFORE allocation): a length of zero and a length
// beyond `max_body` are both protocol errors — the decoder reports them
// without consuming the bogus body, and the server answers a structured
// error frame and drops the connection (stream state past a bad prefix is
// unknowable). Malformed JSON inside a well-framed body leaves the stream
// intact: the server answers an error frame and keeps the connection.
//
// Requests:  {"op":"ping"|"solve"|"admission"|"metrics"|"shutdown",
//             "id":<string, echoed verbatim>,
//             "deadline_ms":<optional nonneg int; 0/absent = no deadline>,
//             ...op-specific fields}
// Responses: {"ok":true,"id":...,...}  |  {"ok":false,"id":...,
//             "code":<machine tag>,"error":<human text>,...}
//
// Overload semantics (PR 10, DESIGN.md §4l): `deadline_ms` is a RELATIVE
// deadline — the client gives the server that many milliseconds from request
// receipt; a request still queued when it expires is answered
// {"code":"deadline_exceeded"} without spending a solve. A connection or
// request shed by the admission governor is answered {"code":"overloaded",
// "retry_after_ms":<int hint>} and the client's backoff honors the hint.
// Degraded answers carry "quality":"approx" (nearest cached neighbor, with
// "distance" = relative coordinate gap) or "quality":"clamped" (solved under
// the reduced overload budget) instead of "ok".
//
// This header is transport-agnostic (pure bytes in / frames out) so the
// decoder can be fuzzed without a socket; the fd-level helpers live in
// server.cpp / client.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/admission.hpp"
#include "core/hap_params.hpp"
#include "experiment/json.hpp"

namespace hap::service {

// Default cap on a frame body. Requests are small parameter tuples and
// responses small result objects; a megabyte is already absurdly generous.
inline constexpr std::uint32_t kMaxFrameBody = 1u << 20;

inline constexpr std::size_t kFrameHeaderBytes = 4;

// Thrown by request parsing/validation; the server maps it to a structured
// error response with code "bad-request".
class ProtocolError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

// Serialize one frame (header + body). Throws ProtocolError when body is
// empty or exceeds max_body.
std::string encode_frame(std::string_view body, std::uint32_t max_body = kMaxFrameBody);

// Incremental frame decoder. Feed arbitrary byte chunks; next() yields
// complete bodies in order. A zero or oversized length prefix puts the
// decoder into a sticky error state (error() non-empty, next() forever
// nullopt): past a bad prefix the stream has no recoverable framing.
class FrameReader {
public:
    explicit FrameReader(std::uint32_t max_body = kMaxFrameBody) : max_body_(max_body) {}

    void feed(std::string_view bytes);
    std::optional<std::string> next();

    const std::string& error() const noexcept { return error_; }
    bool failed() const noexcept { return !error_.empty(); }
    // Bytes buffered but not yet yielded (partial header or body).
    std::size_t pending() const noexcept { return buffer_.size(); }

private:
    std::uint32_t max_body_;
    std::string buffer_;
    std::string error_;
};

// --- Request model ---------------------------------------------------------

// The homogeneous HAP operating point a query names: the paper's Section-4
// tuple (defaults = the baseline, exactly like hapctl's model flags) plus the
// queue capacity and the Fig. 20 admission bounds. This flat spec — not the
// full HapParams tree — is what the cache keys on (see cache.hpp).
struct ModelSpec {
    double lambda = 0.0055;   // user arrival rate
    double mu = 0.001;        // user departure rate
    double lambda1 = 0.01;    // application arrival rate (per user)
    double mu1 = 0.01;        // application departure rate
    std::size_t l = 5;        // application types
    double lambda2 = 0.1;     // message rate (per active instance)
    std::size_t m = 3;        // message types
    double service = 20.0;    // message service rate == queue capacity
    std::size_t max_users = 0;
    std::size_t max_apps = 0;

    // Materialize (validated) HapParams; throws on invalid rates.
    core::HapParams params() const;
};

enum class Op { Ping, Solve, Admission, Metrics, Shutdown };

struct Request {
    Op op = Op::Ping;
    std::string id;  // echoed verbatim in the response; may be empty
    ModelSpec model;           // solve / admission
    double delay_budget = 0.0; // admission threshold; 0 = report-only
    // Relative deadline in milliseconds from server-side receipt; 0 = none.
    std::uint64_t deadline_ms = 0;

    // The shared Fig. 20 tuple this request asks about (admission op).
    core::AdmissionQuery admission_query() const;
};

// Parse one frame body into a Request. Throws ProtocolError on malformed
// JSON, unknown op, bad field types, or invalid model parameters.
Request parse_request(std::string_view body);

// Build request JSON text (client side). Model fields are always written
// explicitly so the request is self-contained. `deadline_ms` 0 omits the
// field entirely, keeping deadline-free request bytes identical to PR 8.
std::string build_solve_request(const ModelSpec& model, const std::string& id,
                                std::uint64_t deadline_ms = 0);
std::string build_admission_request(const ModelSpec& model, double delay_budget,
                                    const std::string& id,
                                    std::uint64_t deadline_ms = 0);
std::string build_simple_request(Op op, const std::string& id);

// --- Response helpers ------------------------------------------------------

std::string error_response(const std::string& id, std::string_view code,
                           std::string_view message);
// Wrap `payload`'s members into {"ok":true,"id":...,<payload members>}.
std::string ok_response(const std::string& id, const experiment::Json& payload);

// Shed frame: {"ok":false,...,"code":"overloaded","retry_after_ms":N}. The
// hint is the server's deterministic backoff floor (ServeOptions, not a
// clock), so shed responses replay byte-identically.
std::string overloaded_response(const std::string& id, std::uint64_t retry_after_ms,
                                std::string_view message);
// {"ok":false,...,"code":"deadline_exceeded"}: the request's deadline lapsed
// while it was queued; no solve was spent on it.
std::string deadline_exceeded_response(const std::string& id);

}  // namespace hap::service
