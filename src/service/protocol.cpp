#include "service/protocol.hpp"

#include <utility>

#include "core/contracts.hpp"

namespace hap::service {

namespace {

using experiment::Json;

std::uint32_t decode_u32le(const char* p) {
    const auto b = [&](int i) {
        return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

void encode_u32le(std::uint32_t v, std::string& out) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

double number_field(const Json& j, const char* key, double fallback) {
    const Json* v = j.find(key);
    if (v == nullptr) return fallback;
    if (!v->is_number()) throw ProtocolError(std::string("field '") + key + "' must be a number");
    return v->as_number();
}

std::size_t count_field(const Json& j, const char* key, std::size_t fallback) {
    const Json* v = j.find(key);
    if (v == nullptr) return fallback;
    if (v->type() != Json::Type::Int || v->as_int() < 0)
        throw ProtocolError(std::string("field '") + key + "' must be a nonnegative integer");
    return static_cast<std::size_t>(v->as_int());
}

}  // namespace

std::string encode_frame(std::string_view body, std::uint32_t max_body) {
    if (body.empty()) throw ProtocolError("cannot encode an empty frame");
    if (body.size() > max_body)
        throw ProtocolError("frame body of " + std::to_string(body.size()) +
                            " bytes exceeds the " + std::to_string(max_body) + "-byte cap");
    std::string out;
    out.reserve(kFrameHeaderBytes + body.size());
    encode_u32le(static_cast<std::uint32_t>(body.size()), out);
    out.append(body);
    return out;
}

void FrameReader::feed(std::string_view bytes) {
    if (failed()) return;  // sticky: nothing past a bad prefix is trustworthy
    buffer_.append(bytes);
}

std::optional<std::string> FrameReader::next() {
    if (failed() || buffer_.size() < kFrameHeaderBytes) return std::nullopt;
    const std::uint32_t len = decode_u32le(buffer_.data());
    if (len == 0) {
        error_ = "zero-length frame";
        buffer_.clear();
        return std::nullopt;
    }
    if (len > max_body_) {
        error_ = "frame length " + std::to_string(len) + " exceeds the " +
                 std::to_string(max_body_) + "-byte cap";
        buffer_.clear();
        return std::nullopt;
    }
    if (buffer_.size() < kFrameHeaderBytes + len) return std::nullopt;
    std::string body = buffer_.substr(kFrameHeaderBytes, len);
    buffer_.erase(0, kFrameHeaderBytes + len);
    return body;
}

core::HapParams ModelSpec::params() const {
    core::HapParams p =
        core::HapParams::homogeneous(lambda, mu, lambda1, mu1, l, lambda2, m, service);
    p.max_users = max_users;
    p.max_apps = max_apps;
    p.validate();
    return p;
}

core::AdmissionQuery Request::admission_query() const {
    core::AdmissionQuery q;
    q.max_users = model.max_users;
    q.max_apps = model.max_apps;
    q.service_rate = model.service;
    q.delay_budget = delay_budget;
    return q;
}

Request parse_request(std::string_view body) {
    Json j;
    try {
        j = Json::parse(body);
    } catch (const std::exception& e) {
        throw ProtocolError(std::string("malformed request JSON: ") + e.what());
    }
    if (!j.is_object()) throw ProtocolError("request must be a JSON object");

    Request r;
    const Json* op = j.find("op");
    if (op == nullptr || !op->is_string())
        throw ProtocolError("request needs a string 'op' field");
    const std::string& name = op->as_string();
    if (name == "ping") {
        r.op = Op::Ping;
    } else if (name == "solve") {
        r.op = Op::Solve;
    } else if (name == "admission") {
        r.op = Op::Admission;
    } else if (name == "metrics") {
        r.op = Op::Metrics;
    } else if (name == "shutdown") {
        r.op = Op::Shutdown;
    } else {
        throw ProtocolError("unknown op '" + name + "'");
    }
    if (const Json* id = j.find("id")) {
        if (!id->is_string()) throw ProtocolError("'id' must be a string");
        r.id = id->as_string();
    }
    if (const Json* dl = j.find("deadline_ms")) {
        if (dl->type() != Json::Type::Int || dl->as_int() < 0)
            throw ProtocolError("'deadline_ms' must be a nonnegative integer");
        r.deadline_ms = static_cast<std::uint64_t>(dl->as_int());
    }
    if (r.op == Op::Solve || r.op == Op::Admission) {
        const Json* model = j.find("model");
        const Json& m = model != nullptr ? *model : j;  // flat requests allowed
        if (!m.is_object()) throw ProtocolError("'model' must be an object");
        r.model.lambda = number_field(m, "lambda", r.model.lambda);
        r.model.mu = number_field(m, "mu", r.model.mu);
        r.model.lambda1 = number_field(m, "lambda1", r.model.lambda1);
        r.model.mu1 = number_field(m, "mu1", r.model.mu1);
        r.model.l = count_field(m, "l", r.model.l);
        r.model.lambda2 = number_field(m, "lambda2", r.model.lambda2);
        r.model.m = count_field(m, "m", r.model.m);
        r.model.service = number_field(m, "service", r.model.service);
        r.model.max_users = count_field(m, "max_users", r.model.max_users);
        r.model.max_apps = count_field(m, "max_apps", r.model.max_apps);
        r.delay_budget = number_field(j, "budget", 0.0);
        try {
            (void)r.model.params();          // rate/shape validation
            r.admission_query().validate();  // finite capacity/threshold
        } catch (const std::exception& e) {
            throw ProtocolError(std::string("invalid model: ") + e.what());
        }
    }
    return r;
}

namespace {

Json model_json(const ModelSpec& model) {
    Json m = Json::object();
    m.set("lambda", Json::number(model.lambda));
    m.set("mu", Json::number(model.mu));
    m.set("lambda1", Json::number(model.lambda1));
    m.set("mu1", Json::number(model.mu1));
    m.set("l", Json::integer(static_cast<std::uint64_t>(model.l)));
    m.set("lambda2", Json::number(model.lambda2));
    m.set("m", Json::integer(static_cast<std::uint64_t>(model.m)));
    m.set("service", Json::number(model.service));
    m.set("max_users", Json::integer(static_cast<std::uint64_t>(model.max_users)));
    m.set("max_apps", Json::integer(static_cast<std::uint64_t>(model.max_apps)));
    return m;
}

Json request_shell(const char* op, const std::string& id) {
    Json j = Json::object();
    j.set("op", Json::string(op));
    if (!id.empty()) j.set("id", Json::string(id));
    return j;
}

}  // namespace

std::string build_solve_request(const ModelSpec& model, const std::string& id,
                                std::uint64_t deadline_ms) {
    Json j = request_shell("solve", id);
    if (deadline_ms > 0) j.set("deadline_ms", Json::integer(deadline_ms));
    j.set("model", model_json(model));
    return j.dump(0);
}

std::string build_admission_request(const ModelSpec& model, double delay_budget,
                                    const std::string& id,
                                    std::uint64_t deadline_ms) {
    HAP_CHECK_FINITE(delay_budget);
    Json j = request_shell("admission", id);
    if (deadline_ms > 0) j.set("deadline_ms", Json::integer(deadline_ms));
    j.set("model", model_json(model));
    j.set("budget", Json::number(delay_budget));
    return j.dump(0);
}

std::string build_simple_request(Op op, const std::string& id) {
    const char* name = "ping";
    switch (op) {
        case Op::Ping: name = "ping"; break;
        case Op::Metrics: name = "metrics"; break;
        case Op::Shutdown: name = "shutdown"; break;
        case Op::Solve:
        case Op::Admission:
            throw ProtocolError("solve/admission requests need a model; use the "
                                "dedicated builders");
    }
    return request_shell(name, id).dump(0);
}

std::string error_response(const std::string& id, std::string_view code,
                           std::string_view message) {
    Json j = Json::object();
    j.set("ok", Json::boolean(false));
    if (!id.empty()) j.set("id", Json::string(id));
    j.set("code", Json::string(std::string(code)));
    j.set("error", Json::string(std::string(message)));
    return j.dump(0);
}

std::string overloaded_response(const std::string& id, std::uint64_t retry_after_ms,
                                std::string_view message) {
    Json j = Json::object();
    j.set("ok", Json::boolean(false));
    if (!id.empty()) j.set("id", Json::string(id));
    j.set("code", Json::string("overloaded"));
    j.set("error", Json::string(std::string(message)));
    j.set("retry_after_ms", Json::integer(retry_after_ms));
    return j.dump(0);
}

std::string deadline_exceeded_response(const std::string& id) {
    return error_response(id, "deadline_exceeded",
                          "deadline expired while the request was queued");
}

std::string ok_response(const std::string& id, const experiment::Json& payload) {
    Json j = Json::object();
    j.set("ok", Json::boolean(true));
    if (!id.empty()) j.set("id", Json::string(id));
    for (const auto& [key, value] : payload.members()) j.set(key, value);
    return j.dump(0);
}

}  // namespace hap::service
