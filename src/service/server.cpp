#include "service/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "experiment/analytic.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/pool.hpp"

namespace hap::service {

namespace {

using experiment::Json;

void count(const char* name, std::uint64_t delta = 1) {
    if (obs::enabled()) obs::registry().add_counter(name, delta);
}

// Full-buffer send; EINTR retried, SIGPIPE suppressed (a vanished client is
// an ordinary condition for a daemon, not a process-killing event).
bool send_all(int fd, std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void set_io_timeouts(int fd, int timeout_ms) {
    if (timeout_ms <= 0) return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Json solve_result_json(const core::Solution0Result& s0) {
    Json r = Json::object();
    r.set("mean_delay", Json::number(s0.mean_delay));
    r.set("utilization", Json::number(s0.utilization));
    r.set("sigma", Json::number(s0.sigma));
    r.set("mean_messages", Json::number(s0.mean_messages));
    r.set("mean_rate", Json::number(s0.mean_rate));
    r.set("mean_users", Json::number(s0.mean_users));
    r.set("mean_apps", Json::number(s0.mean_apps));
    r.set("truncation_mass", Json::number(s0.truncation_mass));
    r.set("states", Json::integer(static_cast<std::uint64_t>(s0.states)));
    r.set("sweeps", Json::integer(static_cast<std::uint64_t>(s0.sweeps)));
    r.set("converged", Json::boolean(s0.converged));
    r.set("warm_started", Json::boolean(s0.warm_started));
    return r;
}

// One client's claim on a (possibly shared) solve. Fields other than `done`
// are written by the batch leader BEFORE done is set under the solve mutex,
// so a woken waiter reads them race-free.
struct Waiter {
    bool done = false;
    std::string source;   // "warm" | "cold"
    std::string quality;  // "ok" | "degraded"
    std::string error;    // non-empty = solve failed
    std::size_t batch = 1;
    Json result;
};

struct PendingReq {
    std::string key;
    double coord = 0.0;
    ModelSpec model;
    std::shared_ptr<Waiter> waiter;
};

}  // namespace

struct Hapd::Impl {
    ServeOptions opts;
    PointCache point_cache;

    int listen_fd = -1;
    int resolved_port = 0;
    std::atomic<bool> stopping{false};
    std::unique_ptr<parallel::Pool> pool;

    // Open client connections, so stop() can unblock handlers parked in recv.
    std::mutex conn_mutex;
    std::set<int> conns;

    // wait()/shutdown-op handshake.
    std::mutex stop_mutex;
    std::condition_variable stop_cv;
    bool stop_requested = false;

    // Batching state: per-family pending queues and the in-flight leader set.
    std::mutex solve_mutex;
    std::condition_variable solve_cv;
    std::map<std::string, std::vector<PendingReq>> pending;
    std::set<std::string> in_flight;

    explicit Impl(ServeOptions o)
        : opts(std::move(o)), point_cache(opts.cache_path) {}

    void log(const std::string& line) {
        if (opts.log) opts.log(line);
    }

    void request_stop() {
        stopping.store(true);
        {
            const std::lock_guard<std::mutex> lock(stop_mutex);
            stop_requested = true;
        }
        stop_cv.notify_all();
    }

    // --- query handlers ----------------------------------------------------

    std::string handle_solve(const Request& req) {
        const obs::ScopedTimer timer("hapd.latency.solve");
        count("hapd.queries.solve");
        const std::string key = solve_key(req.model);
        if (auto hit = point_cache.lookup(key)) {
            count("hapd.cache.hits");
            Json payload = Json::object();
            payload.set("source", Json::string("hit"));
            payload.set("quality", Json::string(hit->quality));
            payload.set("result", std::move(hit->result));
            return ok_response(req.id, payload);
        }
        count("hapd.cache.misses");
        const std::shared_ptr<Waiter> w = enqueue_and_solve(req);
        if (!w->error.empty()) return error_response(req.id, "solve-failed", w->error);
        Json payload = Json::object();
        payload.set("source", Json::string(w->source));
        payload.set("quality", Json::string(w->quality));
        if (w->batch > 1)
            payload.set("batch", Json::integer(static_cast<std::uint64_t>(w->batch)));
        payload.set("result", std::move(w->result));
        return ok_response(req.id, payload);
    }

    std::string handle_admission(const Request& req) {
        const obs::ScopedTimer timer("hapd.latency.admission");
        count("hapd.queries.admission");
        const std::string key = admission_key(req.model, req.delay_budget);
        if (auto hit = point_cache.lookup(key)) {
            count("hapd.cache.hits");
            Json payload = Json::object();
            payload.set("source", Json::string("hit"));
            payload.set("quality", Json::string(hit->quality));
            payload.set("result", std::move(hit->result));
            return ok_response(req.id, payload);
        }
        count("hapd.cache.misses");
        const core::AdmissionOutcome o =
            core::evaluate_admission(req.model.params(), req.admission_query());
        Json r = Json::object();
        r.set("admit", Json::boolean(o.admit));
        r.set("stable", Json::boolean(o.stable));
        r.set("mean_rate", Json::number(o.mean_rate));
        r.set("sigma", Json::number(o.sigma));
        if (o.stable) r.set("mean_delay", Json::number(o.mean_delay));

        CachedPoint cp;
        cp.key = key;
        cp.kind = "admission";
        cp.quality = "ok";
        cp.result = r;
        point_cache.insert(std::move(cp));

        Json payload = Json::object();
        payload.set("source", Json::string("cold"));
        payload.set("quality", Json::string("ok"));
        payload.set("result", std::move(r));
        return ok_response(req.id, payload);
    }

    std::string handle_metrics(const Request& req) {
        count("hapd.queries.metrics");
        Json payload = Json::object();
        const obs::MetricsSnapshot snap = obs::registry().snapshot();
        Json counters = Json::object();
        for (const auto& [name, value] : snap.counters)
            counters.set(name, Json::integer(value));
        payload.set("counters", std::move(counters));
        Json cache_info = Json::object();
        cache_info.set("size",
                       Json::integer(static_cast<std::uint64_t>(point_cache.size())));
        cache_info.set("loaded",
                       Json::integer(static_cast<std::uint64_t>(point_cache.loaded())));
        cache_info.set("persist_errors",
                       Json::integer(
                           static_cast<std::uint64_t>(point_cache.persist_errors())));
        payload.set("cache", std::move(cache_info));
        payload.set("text", Json::string(obs::registry().report()));
        return ok_response(req.id, payload);
    }

    // Returns (response body, shutdown-after-send).
    std::pair<std::string, bool> handle_request(const std::string& body) {
        const obs::ScopedTimer timer("hapd.latency.request");
        count("hapd.queries");
        Request req;
        try {
            req = parse_request(body);
        } catch (const ProtocolError& e) {
            count("hapd.protocol.errors");
            return {error_response("", "bad-request", e.what()), false};
        }
        try {
            switch (req.op) {
                case Op::Ping: {
                    count("hapd.queries.ping");
                    Json payload = Json::object();
                    payload.set("pong", Json::boolean(true));
                    return {ok_response(req.id, payload), false};
                }
                case Op::Solve:
                    return {handle_solve(req), false};
                case Op::Admission:
                    return {handle_admission(req), false};
                case Op::Metrics:
                    return {handle_metrics(req), false};
                case Op::Shutdown: {
                    count("hapd.queries.shutdown");
                    Json payload = Json::object();
                    payload.set("stopping", Json::boolean(true));
                    return {ok_response(req.id, payload), true};
                }
            }
        } catch (const std::exception& e) {
            count("hapd.internal.errors");
            return {error_response(req.id, "internal", e.what()), false};
        }
        return {error_response(req.id, "internal", "unreachable op"), false};
    }

    // --- batched solve path ------------------------------------------------

    std::shared_ptr<Waiter> enqueue_and_solve(const Request& req) {
        const std::string family = solve_family(req.model);
        const std::string key = solve_key(req.model);
        std::unique_lock<std::mutex> lock(solve_mutex);
        std::shared_ptr<Waiter> w;
        for (const PendingReq& p : pending[family]) {
            if (p.key == key) {
                w = p.waiter;  // identical pending query: share one solve
                break;
            }
        }
        if (w == nullptr) {
            w = std::make_shared<Waiter>();
            pending[family].push_back(PendingReq{key, req.model.lambda, req.model, w});
        }
        if (in_flight.count(family) != 0) {
            count("hapd.batch.followers");
            solve_cv.wait(lock, [&] { return w->done; });
            return w;
        }
        in_flight.insert(family);
        for (;;) {
            const auto it = pending.find(family);
            if (it == pending.end() || it->second.empty()) {
                if (it != pending.end()) pending.erase(it);
                break;
            }
            std::vector<PendingReq> batch = std::move(it->second);
            pending.erase(it);
            lock.unlock();
            const std::vector<std::shared_ptr<Waiter>> finished =
                solve_batch(family, std::move(batch));
            lock.lock();
            for (const std::shared_ptr<Waiter>& fin : finished) fin->done = true;
            solve_cv.notify_all();
        }
        in_flight.erase(family);
        lock.unlock();
        solve_cv.notify_all();
        return w;
    }

    std::vector<std::shared_ptr<Waiter>> solve_batch(const std::string& family,
                                                     std::vector<PendingReq> batch) {
        count("hapd.batch.rounds");
        // Deterministic grid: ascending continuation coordinate (key breaks
        // exact-coordinate ties, which can only be distinct bounds/shapes).
        std::stable_sort(batch.begin(), batch.end(),
                         [](const PendingReq& a, const PendingReq& b) {
                             return std::tie(a.coord, a.key) < std::tie(b.coord, b.key);
                         });
        struct Point {
            std::string key;
            double coord = 0.0;
            ModelSpec model;
            std::vector<std::shared_ptr<Waiter>> waiters;
        };
        std::vector<Point> points;
        for (PendingReq& p : batch) {
            if (!points.empty() && points.back().key == p.key) {
                points.back().waiters.push_back(std::move(p.waiter));
            } else {
                Point pt;
                pt.key = std::move(p.key);
                pt.coord = p.coord;
                pt.model = p.model;
                pt.waiters.push_back(std::move(p.waiter));
                points.push_back(std::move(pt));
            }
        }

        std::vector<std::shared_ptr<Waiter>> finished;
        const auto deliver = [&](Point& pt, const std::string& source,
                                 const std::string& quality, Json result,
                                 const std::string& error, std::size_t batch_size) {
            for (const std::shared_ptr<Waiter>& w : pt.waiters) {
                w->source = source;
                w->quality = quality;
                w->error = error;
                w->batch = batch_size;
                w->result = result;
                finished.push_back(w);
            }
        };

        // A solve that raced us may have landed these keys already.
        std::vector<Point> todo;
        for (Point& pt : points) {
            if (auto hit = point_cache.lookup(pt.key)) {
                count("hapd.cache.hits");
                deliver(pt, "hit", hit->quality, std::move(hit->result), "", 1);
            } else {
                todo.push_back(std::move(pt));
            }
        }
        if (todo.empty()) return finished;
        if (todo.size() > 1) count("hapd.batch.coalesced", todo.size() - 1);

        // Continuation chain over the batch, seeded from the family's nearest
        // solved neighbor (PR 4 warm-start machinery end to end).
        const std::optional<NearestState> seed =
            point_cache.nearest(family, todo.front().coord);

        experiment::AnalyticSweepOptions sweep;
        sweep.warm_start = true;
        sweep.adaptive = true;
        sweep.fallback = true;
        sweep.export_states = true;
        sweep.solver.tol = opts.tol;
        sweep.solver.trunc_tol = opts.trunc_tol;
        sweep.solver.max_sweeps = opts.max_sweeps;
        sweep.solver.max_messages = opts.zmax;
        sweep.solver.check_every = 10;
        sweep.solver.budget = opts.budget;
        sweep.solver.threads = opts.solver_threads;
        if (opts.solver_threads != 1) sweep.solver.coloring = markov::ColoringMode::kColored;
        if (seed.has_value()) {
            sweep.seed = &seed->state;
            sweep.seed_coord = seed->coord;
        }

        std::vector<experiment::AnalyticPoint> grid;
        grid.reserve(todo.size());
        for (const Point& pt : todo) {
            experiment::AnalyticPoint ap;
            ap.name = pt.key;
            ap.params = pt.model.params();
            ap.coord = pt.coord;
            grid.push_back(std::move(ap));
        }

        std::vector<experiment::AnalyticPointResult> results;
        try {
            const obs::ScopedTimer timer("hapd.latency.sweep");
            results = experiment::run_analytic_sweep(grid, sweep, nullptr);
        } catch (const std::exception& e) {
            count("hapd.solve.failed", todo.size());
            for (Point& pt : todo) deliver(pt, "", "failed", Json(), e.what(), todo.size());
            return finished;
        }

        for (std::size_t i = 0; i < todo.size(); ++i) {
            Point& pt = todo[i];
            experiment::AnalyticPointResult& pr = results[i];
            if (pr.failed()) {
                count("hapd.solve.failed");
                deliver(pt, "", "failed", Json(), pr.error, todo.size());
                continue;
            }
            const bool warm = pr.s0.warm_started;
            count(warm ? "hapd.solve.warm" : "hapd.solve.cold");
            if (pr.quality == "degraded") count("hapd.solve.degraded");
            Json result = solve_result_json(pr.s0);

            CachedPoint cp;
            cp.key = pt.key;
            cp.family = family;
            cp.coord = pt.coord;
            cp.kind = "solve";
            cp.quality = pr.quality;
            cp.result = result;
            cp.state = std::move(pr.s0.state);
            point_cache.insert(std::move(cp));

            deliver(pt, warm ? "warm" : "cold", pr.quality, std::move(result), "",
                    todo.size());
        }
        return finished;
    }

    // --- transport ---------------------------------------------------------

    void open_socket() {
        if (!opts.socket_path.empty()) {
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            if (opts.socket_path.size() >= sizeof(addr.sun_path))
                throw std::runtime_error("hapd: socket path too long: " +
                                         opts.socket_path);
            listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (listen_fd < 0) throw std::runtime_error("hapd: cannot create socket");
            (void)::unlink(opts.socket_path.c_str());  // stale socket from a crash
            opts.socket_path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
            if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
                ::close(listen_fd);
                listen_fd = -1;
                throw std::runtime_error("hapd: cannot bind " + opts.socket_path);
            }
        } else {
            listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (listen_fd < 0) throw std::runtime_error("hapd: cannot create socket");
            const int one = 1;
            (void)::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
            if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
                ::close(listen_fd);
                listen_fd = -1;
                throw std::runtime_error("hapd: cannot bind loopback port " +
                                         std::to_string(opts.port));
            }
            sockaddr_in bound{};
            socklen_t len = sizeof(bound);
            if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
                resolved_port = static_cast<int>(ntohs(bound.sin_port));
        }
        if (::listen(listen_fd, 64) != 0) {
            ::close(listen_fd);
            listen_fd = -1;
            throw std::runtime_error("hapd: listen failed");
        }
    }

    void accept_loop() {
        while (!stopping.load()) {
            pollfd p{};
            p.fd = listen_fd;
            p.events = POLLIN;
            const int rc = ::poll(&p, 1, 200);  // bounded wait: stop() is honored
            if (rc <= 0) continue;
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (stopping.load()) break;
                continue;
            }
            set_io_timeouts(fd, opts.recv_timeout_ms);
            count("hapd.connections");
            {
                const std::lock_guard<std::mutex> lock(conn_mutex);
                conns.insert(fd);
            }
            if (!pool->submit([this, fd] { handle_connection(fd); })) {
                drop_connection(fd);
            }
        }
    }

    void drop_connection(int fd) {
        {
            const std::lock_guard<std::mutex> lock(conn_mutex);
            conns.erase(fd);
        }
        (void)::close(fd);
    }

    void handle_connection(int fd) {
        FrameReader reader(opts.max_frame);
        char buf[4096];
        bool open = true;
        while (open && !stopping.load()) {
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n == 0) break;  // client closed (possibly mid-frame: just drop)
            if (n < 0) {
                if (errno == EINTR) continue;
                break;  // timeout (EAGAIN) or hard error: close
            }
            reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
            while (auto body = reader.next()) {
                const auto [response, shutdown_after] = handle_request(*body);
                if (!send_all(fd, encode_frame(response))) {
                    open = false;
                    break;
                }
                if (shutdown_after) {
                    request_stop();
                    open = false;
                    break;
                }
            }
            if (reader.failed()) {
                // Framing is unrecoverable: answer one structured error
                // (best-effort) and drop the connection.
                count("hapd.protocol.errors");
                (void)send_all(fd, encode_frame(error_response("", "frame-error",
                                                               reader.error())));
                break;
            }
        }
        drop_connection(fd);
    }
};

Hapd::Hapd(ServeOptions opts) : impl_(new Impl(std::move(opts))) {}

Hapd::~Hapd() {
    stop();
    delete impl_;
}

void Hapd::start() {
    // The scrape endpoint and the serving counters are part of the service
    // contract, so the registry is always on while a daemon runs.
    obs::set_enabled(true);
    impl_->open_socket();
    // +1: one pool slot is the accept loop itself; `threads` handle clients.
    impl_->pool = std::make_unique<parallel::Pool>(
        std::max<std::size_t>(impl_->opts.threads, 1) + 1,
        [this](std::exception_ptr ep) {
            try {
                if (ep) std::rethrow_exception(ep);
            } catch (const std::exception& e) {
                impl_->log(std::string("hapd: worker error: ") + e.what());
            } catch (...) {
                impl_->log("hapd: worker error (non-standard exception)");
            }
        });
    impl_->pool->submit([this] { impl_->accept_loop(); });
    impl_->log("hapd: listening on " + endpoint() +
               (impl_->opts.cache_path.empty()
                    ? std::string(" (memory-only cache)")
                    : " (cache " + impl_->opts.cache_path + ", " +
                          std::to_string(impl_->point_cache.loaded()) +
                          " points restored)"));
    if (obs::enabled())
        obs::registry().add_counter("hapd.cache.loaded", impl_->point_cache.loaded());
}

void Hapd::wait() {
    std::unique_lock<std::mutex> lock(impl_->stop_mutex);
    impl_->stop_cv.wait(lock, [&] { return impl_->stop_requested; });
}

void Hapd::stop() {
    impl_->request_stop();
    {
        // Unblock handlers parked in recv(): a shutdown elicits EOF.
        const std::lock_guard<std::mutex> lock(impl_->conn_mutex);
        for (const int fd : impl_->conns) (void)::shutdown(fd, SHUT_RDWR);
    }
    if (impl_->pool) {
        impl_->pool->shutdown();
        impl_->pool.reset();
    }
    if (impl_->listen_fd >= 0) {
        (void)::close(impl_->listen_fd);
        impl_->listen_fd = -1;
        if (!impl_->opts.socket_path.empty())
            (void)::unlink(impl_->opts.socket_path.c_str());
    }
}

int Hapd::port() const noexcept { return impl_->resolved_port; }

std::string Hapd::endpoint() const {
    if (!impl_->opts.socket_path.empty()) return "unix:" + impl_->opts.socket_path;
    return "tcp:127.0.0.1:" + std::to_string(impl_->resolved_port);
}

const PointCache& Hapd::cache() const { return impl_->point_cache; }

}  // namespace hap::service
