#include "service/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "experiment/analytic.hpp"
#include "experiment/faultinject.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/pool.hpp"

namespace hap::service {

namespace {

using experiment::Json;

void count(const char* name, std::uint64_t delta = 1) {
    if (obs::enabled()) obs::registry().add_counter(name, delta);
}

// Full-buffer send; EINTR retried, SIGPIPE suppressed (a vanished client is
// an ordinary condition for a daemon, not a process-killing event).
bool send_all(int fd, std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void set_io_timeouts(int fd, int timeout_ms) {
    if (timeout_ms <= 0) return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Json solve_result_json(const core::Solution0Result& s0) {
    Json r = Json::object();
    r.set("mean_delay", Json::number(s0.mean_delay));
    r.set("utilization", Json::number(s0.utilization));
    r.set("sigma", Json::number(s0.sigma));
    r.set("mean_messages", Json::number(s0.mean_messages));
    r.set("mean_rate", Json::number(s0.mean_rate));
    r.set("mean_users", Json::number(s0.mean_users));
    r.set("mean_apps", Json::number(s0.mean_apps));
    r.set("truncation_mass", Json::number(s0.truncation_mass));
    r.set("states", Json::integer(static_cast<std::uint64_t>(s0.states)));
    r.set("sweeps", Json::integer(static_cast<std::uint64_t>(s0.sweeps)));
    r.set("converged", Json::boolean(s0.converged));
    r.set("warm_started", Json::boolean(s0.warm_started));
    return r;
}

using Clock = std::chrono::steady_clock;

// One client's claim on a (possibly shared) solve. Fields other than `done`
// are written by the batch leader BEFORE done is set under the solve mutex,
// so a woken waiter reads them race-free. `claims` and `in_pending` are
// deadline bookkeeping, only ever touched under the solve mutex: claims
// counts clients still waiting on this waiter, and in_pending is true while
// the request sits in the pending map (a leader has not yet taken it). A
// request whose every claimant times out while still pending is removed
// without spending a solve.
struct Waiter {
    bool done = false;
    std::string source;   // "warm" | "cold"
    std::string quality;  // "ok" | "degraded" | "clamped"
    std::string error;    // non-empty = solve failed
    std::size_t batch = 1;
    Json result;
    std::size_t claims = 0;
    bool in_pending = true;
};

struct PendingReq {
    std::string key;
    double coord = 0.0;
    ModelSpec model;
    std::shared_ptr<Waiter> waiter;
};

}  // namespace

struct Hapd::Impl {
    ServeOptions opts;
    PointCache point_cache;

    int listen_fd = -1;
    int resolved_port = 0;
    std::atomic<bool> stopping{false};
    std::unique_ptr<parallel::Pool> pool;

    // Effective governor thresholds (0-valued options resolved); set once in
    // Hapd::start() before any worker exists, read-only afterwards.
    std::size_t max_conns_eff = 0;
    std::size_t degrade_depth_eff = 0;
    std::size_t shed_depth_eff = 0;

    // Open client connections, so stop() can unblock handlers parked in recv.
    std::mutex conn_mutex;
    std::set<int> conns;

    // wait()/shutdown-op handshake.
    std::mutex stop_mutex;
    std::condition_variable stop_cv;
    bool stop_requested = false;

    // Batching state: per-bucket pending queues and the in-flight leader set.
    // A bucket is a family, or family + ";clamped" — clamped misses batch
    // separately so a clamp-budget chain never feeds a full-budget one.
    std::mutex solve_mutex;
    std::condition_variable solve_cv;
    std::map<std::string, std::vector<PendingReq>> pending;
    std::set<std::string> in_flight;
    // Solve-miss requests currently queued or solving (the overload ladder's
    // depth measure); guarded by solve_mutex.
    std::size_t solve_depth = 0;

    explicit Impl(ServeOptions o)
        : opts(std::move(o)), point_cache(opts.cache_path) {}

    void log(const std::string& line) {
        if (opts.log) opts.log(line);
    }

    void request_stop() {
        stopping.store(true);
        {
            const std::lock_guard<std::mutex> lock(stop_mutex);
            stop_requested = true;
        }
        stop_cv.notify_all();
    }

    // --- query handlers ----------------------------------------------------

    void dec_depth() {
        const std::lock_guard<std::mutex> lock(solve_mutex);
        --solve_depth;
    }

    std::string handle_solve(const Request& req, Clock::time_point arrival) {
        const obs::ScopedTimer timer("hapd.latency.solve");
        count("hapd.queries.solve");
        const std::string key = solve_key(req.model);
        if (auto hit = point_cache.lookup(key)) {
            count("hapd.cache.hits");
            Json payload = Json::object();
            payload.set("source", Json::string("hit"));
            payload.set("quality", Json::string(hit->quality));
            payload.set("result", std::move(hit->result));
            return ok_response(req.id, payload);
        }
        count("hapd.cache.misses");

        // Deadline is relative to frame receipt (protocol.hpp contract).
        const Clock::time_point deadline =
            req.deadline_ms > 0
                ? arrival + std::chrono::milliseconds(req.deadline_ms)
                : Clock::time_point::max();

        // Overload ladder (DESIGN.md §4l): this miss holds a depth slot from
        // here until it is answered; the depth at entry picks the rung.
        bool clamped = false;
        {
            const std::lock_guard<std::mutex> lock(solve_mutex);
            ++solve_depth;
            if (obs::enabled())
                obs::registry().set_gauge_max("hapd.overload.depth_max",
                                              static_cast<double>(solve_depth));
            if (solve_depth > shed_depth_eff) {
                --solve_depth;
                count("hapd.overload.shed");
                return overloaded_response(req.id, opts.retry_after_ms,
                                           "solve queue is full; retry later");
            }
            clamped = solve_depth > degrade_depth_eff;
        }
        if (clamped) {
            // Approx rung first: a cached family neighbor inside the distance
            // bound answers without spending any solve at all.
            auto near = point_cache.nearest_result(solve_family(req.model),
                                                   req.model.lambda);
            if (near.has_value()) {
                const double denom = std::max(std::abs(req.model.lambda), 1e-300);
                const double dist = std::abs(near->coord - req.model.lambda) / denom;
                if (dist <= opts.approx_rel_distance) {
                    dec_depth();
                    count("hapd.overload.approx");
                    Json payload = Json::object();
                    payload.set("source", Json::string("approx"));
                    payload.set("quality", Json::string("approx"));
                    payload.set("distance", Json::number(dist));
                    payload.set("result", std::move(near->result));
                    return ok_response(req.id, payload);
                }
            }
            count("hapd.overload.clamped");
        }

        const std::shared_ptr<Waiter> w = enqueue_and_solve(req, deadline, clamped);
        dec_depth();
        if (w == nullptr) {
            count("hapd.overload.deadline_exceeded");
            return deadline_exceeded_response(req.id);
        }
        if (!w->error.empty()) return error_response(req.id, "solve-failed", w->error);
        Json payload = Json::object();
        payload.set("source", Json::string(w->source));
        payload.set("quality", Json::string(w->quality));
        if (w->batch > 1)
            payload.set("batch", Json::integer(static_cast<std::uint64_t>(w->batch)));
        payload.set("result", std::move(w->result));
        return ok_response(req.id, payload);
    }

    std::string handle_admission(const Request& req) {
        const obs::ScopedTimer timer("hapd.latency.admission");
        count("hapd.queries.admission");
        const std::string key = admission_key(req.model, req.delay_budget);
        if (auto hit = point_cache.lookup(key)) {
            count("hapd.cache.hits");
            Json payload = Json::object();
            payload.set("source", Json::string("hit"));
            payload.set("quality", Json::string(hit->quality));
            payload.set("result", std::move(hit->result));
            return ok_response(req.id, payload);
        }
        count("hapd.cache.misses");
        const core::AdmissionOutcome o =
            core::evaluate_admission(req.model.params(), req.admission_query());
        Json r = Json::object();
        r.set("admit", Json::boolean(o.admit));
        r.set("stable", Json::boolean(o.stable));
        r.set("mean_rate", Json::number(o.mean_rate));
        r.set("sigma", Json::number(o.sigma));
        if (o.stable) r.set("mean_delay", Json::number(o.mean_delay));

        CachedPoint cp;
        cp.key = key;
        cp.kind = "admission";
        cp.quality = "ok";
        cp.result = r;
        point_cache.insert(std::move(cp));

        Json payload = Json::object();
        payload.set("source", Json::string("cold"));
        payload.set("quality", Json::string("ok"));
        payload.set("result", std::move(r));
        return ok_response(req.id, payload);
    }

    std::string handle_metrics(const Request& req) {
        count("hapd.queries.metrics");
        Json payload = Json::object();
        const obs::MetricsSnapshot snap = obs::registry().snapshot();
        Json counters = Json::object();
        for (const auto& [name, value] : snap.counters)
            counters.set(name, Json::integer(value));
        payload.set("counters", std::move(counters));
        Json cache_info = Json::object();
        cache_info.set("size",
                       Json::integer(static_cast<std::uint64_t>(point_cache.size())));
        cache_info.set("loaded",
                       Json::integer(static_cast<std::uint64_t>(point_cache.loaded())));
        cache_info.set("persist_errors",
                       Json::integer(
                           static_cast<std::uint64_t>(point_cache.persist_errors())));
        payload.set("cache", std::move(cache_info));
        payload.set("text", Json::string(obs::registry().report()));
        return ok_response(req.id, payload);
    }

    // Returns (response body, shutdown-after-send). `arrival` is when the
    // request's complete frame was received — the deadline_ms epoch.
    std::pair<std::string, bool> handle_request(const std::string& body,
                                                Clock::time_point arrival) {
        const obs::ScopedTimer timer("hapd.latency.request");
        count("hapd.queries");
        Request req;
        try {
            req = parse_request(body);
        } catch (const ProtocolError& e) {
            count("hapd.protocol.errors");
            return {error_response("", "bad-request", e.what()), false};
        }
        try {
            switch (req.op) {
                case Op::Ping: {
                    count("hapd.queries.ping");
                    Json payload = Json::object();
                    payload.set("pong", Json::boolean(true));
                    return {ok_response(req.id, payload), false};
                }
                case Op::Solve:
                    return {handle_solve(req, arrival), false};
                case Op::Admission:
                    return {handle_admission(req), false};
                case Op::Metrics:
                    return {handle_metrics(req), false};
                case Op::Shutdown: {
                    count("hapd.queries.shutdown");
                    Json payload = Json::object();
                    payload.set("stopping", Json::boolean(true));
                    return {ok_response(req.id, payload), true};
                }
            }
        } catch (const std::exception& e) {
            count("hapd.internal.errors");
            return {error_response(req.id, "internal", e.what()), false};
        }
        return {error_response(req.id, "internal", "unreachable op"), false};
    }

    // --- batched solve path ------------------------------------------------

    // Withdraw a pending request whose every claimant gave up (solve_mutex held).
    void remove_pending(const std::string& bucket, const std::shared_ptr<Waiter>& w) {
        const auto it = pending.find(bucket);
        if (it == pending.end()) return;
        std::vector<PendingReq>& vec = it->second;
        vec.erase(std::remove_if(vec.begin(), vec.end(),
                                 [&](const PendingReq& p) { return p.waiter == w; }),
                  vec.end());
        if (vec.empty()) pending.erase(it);
    }

    // Returns the answered waiter, or nullptr when the request's deadline
    // expired while it was queued behind an in-flight batch leader.
    std::shared_ptr<Waiter> enqueue_and_solve(const Request& req,
                                              Clock::time_point deadline,
                                              bool clamped) {
        const std::string family = solve_family(req.model);
        const std::string bucket = clamped ? family + ";clamped" : family;
        const std::string key = solve_key(req.model);
        std::unique_lock<std::mutex> lock(solve_mutex);
        std::shared_ptr<Waiter> w;
        for (const PendingReq& p : pending[bucket]) {
            if (p.key == key) {
                w = p.waiter;  // identical pending query: share one solve
                break;
            }
        }
        if (w == nullptr) {
            w = std::make_shared<Waiter>();
            pending[bucket].push_back(PendingReq{key, req.model.lambda, req.model, w});
        }
        w->claims += 1;
        if (in_flight.count(bucket) != 0) {
            count("hapd.batch.followers");
            bool answered = true;
            if (deadline == Clock::time_point::max()) {
                solve_cv.wait(lock, [&] { return w->done; });
            } else {
                answered = solve_cv.wait_until(lock, deadline, [&] { return w->done; });
            }
            if (!answered) {
                // Give up the claim; if nobody else wants this point and no
                // leader has taken it yet, withdraw it so no solve is spent.
                w->claims -= 1;
                if (w->claims == 0 && w->in_pending) remove_pending(bucket, w);
                return nullptr;
            }
            return w;
        }
        in_flight.insert(bucket);
        for (;;) {
            const auto it = pending.find(bucket);
            if (it == pending.end() || it->second.empty()) {
                if (it != pending.end()) pending.erase(it);
                break;
            }
            std::vector<PendingReq> batch = std::move(it->second);
            pending.erase(it);
            for (const PendingReq& p : batch) p.waiter->in_pending = false;
            lock.unlock();
            const std::vector<std::shared_ptr<Waiter>> finished =
                solve_batch(family, clamped, std::move(batch));
            lock.lock();
            for (const std::shared_ptr<Waiter>& fin : finished) fin->done = true;
            solve_cv.notify_all();
        }
        in_flight.erase(bucket);
        lock.unlock();
        solve_cv.notify_all();
        return w;
    }

    std::vector<std::shared_ptr<Waiter>> solve_batch(const std::string& family,
                                                     bool clamped,
                                                     std::vector<PendingReq> batch) {
        count("hapd.batch.rounds");
        // Deterministic grid: ascending continuation coordinate (key breaks
        // exact-coordinate ties, which can only be distinct bounds/shapes).
        std::stable_sort(batch.begin(), batch.end(),
                         [](const PendingReq& a, const PendingReq& b) {
                             return std::tie(a.coord, a.key) < std::tie(b.coord, b.key);
                         });
        struct Point {
            std::string key;
            double coord = 0.0;
            ModelSpec model;
            std::vector<std::shared_ptr<Waiter>> waiters;
        };
        std::vector<Point> points;
        for (PendingReq& p : batch) {
            if (!points.empty() && points.back().key == p.key) {
                points.back().waiters.push_back(std::move(p.waiter));
            } else {
                Point pt;
                pt.key = std::move(p.key);
                pt.coord = p.coord;
                pt.model = p.model;
                pt.waiters.push_back(std::move(p.waiter));
                points.push_back(std::move(pt));
            }
        }

        std::vector<std::shared_ptr<Waiter>> finished;
        const auto deliver = [&](Point& pt, const std::string& source,
                                 const std::string& quality, Json result,
                                 const std::string& error, std::size_t batch_size) {
            for (const std::shared_ptr<Waiter>& w : pt.waiters) {
                w->source = source;
                w->quality = quality;
                w->error = error;
                w->batch = batch_size;
                w->result = result;
                finished.push_back(w);
            }
        };

        // Deadline pre-filter: a point whose every claimant already timed out
        // while it was queued is dropped without spending a solve (each
        // claimant answered itself deadline_exceeded on wake-up).
        {
            const std::lock_guard<std::mutex> lock(solve_mutex);
            std::vector<Point> live;
            live.reserve(points.size());
            for (Point& pt : points) {
                bool claimed = false;
                for (const std::shared_ptr<Waiter>& w : pt.waiters) {
                    if (w->claims > 0) {
                        claimed = true;
                        break;
                    }
                }
                if (claimed) {
                    live.push_back(std::move(pt));
                } else {
                    count("hapd.overload.expired_points");
                    for (const std::shared_ptr<Waiter>& w : pt.waiters)
                        finished.push_back(w);
                }
            }
            points = std::move(live);
        }

        // A solve that raced us may have landed these keys already.
        std::vector<Point> todo;
        for (Point& pt : points) {
            if (auto hit = point_cache.lookup(pt.key)) {
                count("hapd.cache.hits");
                deliver(pt, "hit", hit->quality, std::move(hit->result), "", 1);
            } else {
                todo.push_back(std::move(pt));
            }
        }
        if (todo.empty()) return finished;
        if (todo.size() > 1) count("hapd.batch.coalesced", todo.size() - 1);

        // Chaos hook: stall@solve#ms holds the batch leader here — in_flight
        // held, followers queued — for the scripted duration. This is the
        // window the chaos harness uses to pile deterministic load behind one
        // solve and exercise every ladder rung.
        if (const auto stall =
                experiment::fault_value(experiment::FaultKind::Stall, "solve")) {
            count("hapd.solve.stalls");
            std::this_thread::sleep_for(std::chrono::milliseconds(*stall));
        }

        // Continuation chain over the batch, seeded from the family's nearest
        // solved neighbor (PR 4 warm-start machinery end to end).
        const std::optional<NearestState> seed =
            point_cache.nearest(family, todo.front().coord);

        experiment::AnalyticSweepOptions sweep;
        sweep.warm_start = true;
        sweep.adaptive = true;
        sweep.fallback = true;
        sweep.export_states = true;
        sweep.solver.tol = opts.tol;
        sweep.solver.trunc_tol = opts.trunc_tol;
        sweep.solver.max_sweeps = opts.max_sweeps;
        sweep.solver.max_messages = opts.zmax;
        sweep.solver.check_every = 10;
        sweep.solver.budget = clamped ? opts.clamp_budget : opts.budget;
        sweep.solver.threads = opts.solver_threads;
        if (opts.solver_threads != 1) sweep.solver.coloring = markov::ColoringMode::kColored;
        if (seed.has_value()) {
            sweep.seed = &seed->state;
            sweep.seed_coord = seed->coord;
        }

        std::vector<experiment::AnalyticPoint> grid;
        grid.reserve(todo.size());
        for (const Point& pt : todo) {
            experiment::AnalyticPoint ap;
            ap.name = pt.key;
            ap.params = pt.model.params();
            ap.coord = pt.coord;
            grid.push_back(std::move(ap));
        }

        std::vector<experiment::AnalyticPointResult> results;
        try {
            const obs::ScopedTimer timer("hapd.latency.sweep");
            results = experiment::run_analytic_sweep(grid, sweep, nullptr);
        } catch (const std::exception& e) {
            count("hapd.solve.failed", todo.size());
            for (Point& pt : todo) deliver(pt, "", "failed", Json(), e.what(), todo.size());
            return finished;
        }

        for (std::size_t i = 0; i < todo.size(); ++i) {
            Point& pt = todo[i];
            experiment::AnalyticPointResult& pr = results[i];
            if (pr.failed()) {
                count("hapd.solve.failed");
                deliver(pt, "", "failed", Json(), pr.error, todo.size());
                continue;
            }
            const bool warm = pr.s0.warm_started;
            count(warm ? "hapd.solve.warm" : "hapd.solve.cold");
            if (pr.quality == "degraded") count("hapd.solve.degraded");
            Json result = solve_result_json(pr.s0);

            if (!clamped) {
                // Clamped answers are deliberately NOT cached: a later
                // unloaded solve of the same point must run at full budget
                // and land the real answer (also keeps the cache file
                // byte-identical to a fault-free, unloaded run).
                CachedPoint cp;
                cp.key = pt.key;
                cp.family = family;
                cp.coord = pt.coord;
                cp.kind = "solve";
                cp.quality = pr.quality;
                cp.result = result;
                cp.state = std::move(pr.s0.state);
                point_cache.insert(std::move(cp));
            }

            deliver(pt, warm ? "warm" : "cold", clamped ? "clamped" : pr.quality,
                    std::move(result), "", todo.size());
        }
        return finished;
    }

    // --- transport ---------------------------------------------------------

    void open_socket() {
        if (!opts.socket_path.empty()) {
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            if (opts.socket_path.size() >= sizeof(addr.sun_path))
                throw std::runtime_error("hapd: socket path too long: " +
                                         opts.socket_path);
            listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (listen_fd < 0) throw std::runtime_error("hapd: cannot create socket");
            (void)::unlink(opts.socket_path.c_str());  // stale socket from a crash
            opts.socket_path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
            if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
                ::close(listen_fd);
                listen_fd = -1;
                throw std::runtime_error("hapd: cannot bind " + opts.socket_path);
            }
        } else {
            listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (listen_fd < 0) throw std::runtime_error("hapd: cannot create socket");
            const int one = 1;
            (void)::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
            if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
                ::close(listen_fd);
                listen_fd = -1;
                throw std::runtime_error("hapd: cannot bind loopback port " +
                                         std::to_string(opts.port));
            }
            sockaddr_in bound{};
            socklen_t len = sizeof(bound);
            if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
                resolved_port = static_cast<int>(ntohs(bound.sin_port));
        }
        if (::listen(listen_fd, 64) != 0) {
            ::close(listen_fd);
            listen_fd = -1;
            throw std::runtime_error("hapd: listen failed");
        }
    }

    // Explicit early drop (connection governor): one overloaded frame with
    // the retry hint, then close. The send is SO_SNDTIMEO-bounded, so a
    // stalled client cannot wedge the accept loop.
    void shed_connection(int fd) {
        count("hapd.overload.shed_conns");
        (void)send_all(fd, encode_frame(overloaded_response(
                               "", opts.retry_after_ms,
                               "connection limit reached; retry later")));
        (void)::close(fd);
    }

    void accept_loop() {
        while (!stopping.load()) {
            pollfd p{};
            p.fd = listen_fd;
            p.events = POLLIN;
            const int rc = ::poll(&p, 1, 200);  // bounded wait: stop() is honored
            if (rc <= 0) continue;
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (stopping.load()) break;
                continue;
            }
            set_io_timeouts(fd, opts.recv_timeout_ms);
            count("hapd.connections");
            bool admitted = false;
            {
                const std::lock_guard<std::mutex> lock(conn_mutex);
                if (conns.size() < max_conns_eff) {
                    conns.insert(fd);
                    admitted = true;
                    if (obs::enabled())
                        obs::registry().set_gauge_max(
                            "hapd.conns.open_max",
                            static_cast<double>(conns.size()));
                }
            }
            if (!admitted) {
                shed_connection(fd);
                continue;
            }
            if (!pool->submit([this, fd] { handle_connection(fd); })) {
                // The bounded pending queue refused the job: same explicit
                // shed (unless we are stopping, where silence is fine).
                {
                    const std::lock_guard<std::mutex> lock(conn_mutex);
                    conns.erase(fd);
                }
                if (stopping.load()) {
                    (void)::close(fd);
                } else {
                    shed_connection(fd);
                }
            }
        }
    }

    void drop_connection(int fd) {
        {
            const std::lock_guard<std::mutex> lock(conn_mutex);
            conns.erase(fd);
        }
        (void)::close(fd);
    }

    void handle_connection(int fd) {
        if (stopping.load()) {
            // A drained job that only started after shutdown began: answer an
            // explicit error instead of a silent EOF.
            (void)send_all(fd, encode_frame(error_response(
                                   "", "shutting-down", "daemon is stopping")));
            drop_connection(fd);
            return;
        }
        FrameReader reader(opts.max_frame);
        char buf[4096];
        bool open = true;
        // One deadline covers the idle client and the slowloris client alike:
        // a COMPLETE frame must arrive every recv_timeout_ms; partial bytes
        // do not extend it (server.hpp contract).
        const auto frame_timeout = std::chrono::milliseconds(
            opts.recv_timeout_ms > 0 ? opts.recv_timeout_ms : 0);
        Clock::time_point frame_deadline = opts.recv_timeout_ms > 0
                                               ? Clock::now() + frame_timeout
                                               : Clock::time_point::max();
        while (open && !stopping.load()) {
            pollfd p{};
            p.fd = fd;
            p.events = POLLIN;
            // Bounded tick: honors both stop() and the frame deadline even
            // when the client sends nothing at all.
            const int rc = ::poll(&p, 1, 200);
            if (rc < 0) {
                if (errno == EINTR) continue;
                break;
            }
            if (rc == 0) {
                if (Clock::now() >= frame_deadline) {
                    count("hapd.conn.timeouts");
                    break;
                }
                continue;
            }
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n == 0) break;  // client closed (possibly mid-frame: just drop)
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
                    continue;
                break;  // hard error: close
            }
            const Clock::time_point arrival = Clock::now();
            reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
            bool completed_frame = false;
            while (auto body = reader.next()) {
                completed_frame = true;
                const auto [response, shutdown_after] = handle_request(*body, arrival);
                if (!send_all(fd, encode_frame(response))) {
                    open = false;
                    break;
                }
                if (shutdown_after) {
                    request_stop();
                    open = false;
                    break;
                }
            }
            if (reader.failed()) {
                // Framing is unrecoverable — a torn or oversized frame:
                // answer one structured error (best-effort) and drop.
                count("hapd.protocol.errors");
                (void)send_all(fd, encode_frame(error_response("", "frame-error",
                                                               reader.error())));
                break;
            }
            if (completed_frame) {
                frame_deadline = opts.recv_timeout_ms > 0
                                     ? Clock::now() + frame_timeout
                                     : Clock::time_point::max();
            } else if (Clock::now() >= frame_deadline) {
                // Bytes trickled in but no frame finished: the slowloris case.
                count("hapd.conn.timeouts");
                break;
            }
        }
        drop_connection(fd);
    }
};

Hapd::Hapd(ServeOptions opts) : impl_(new Impl(std::move(opts))) {}

Hapd::~Hapd() {
    stop();
    delete impl_;
}

void Hapd::start() {
    // The scrape endpoint and the serving counters are part of the service
    // contract, so the registry is always on while a daemon runs.
    obs::set_enabled(true);
    // Chaos plans parse once here, on the coordinating thread, before any
    // worker exists (env-after-spawn discipline, DESIGN.md §4h).
    (void)experiment::fault_plan();
    const std::size_t threads = std::max<std::size_t>(impl_->opts.threads, 1);
    impl_->max_conns_eff = impl_->opts.max_connections != 0
                               ? impl_->opts.max_connections
                               : threads + impl_->opts.max_pending;
    impl_->degrade_depth_eff =
        impl_->opts.degrade_depth != 0 ? impl_->opts.degrade_depth : threads;
    impl_->shed_depth_eff =
        impl_->opts.shed_depth != 0 ? impl_->opts.shed_depth : 4 * threads;
    impl_->open_socket();
    // +1: one pool slot is the accept loop itself; `threads` handle clients.
    // The pool's bounded job queue IS the pending-connection bound; with
    // max_pending = 0 one transient slot remains so a handler finishing its
    // close never sheds the connection replacing it (the connection governor
    // is the primary cap in that configuration).
    impl_->pool = std::make_unique<parallel::Pool>(
        threads + 1,
        [this](std::exception_ptr ep) {
            try {
                if (ep) std::rethrow_exception(ep);
            } catch (const std::exception& e) {
                impl_->log(std::string("hapd: worker error: ") + e.what());
            } catch (...) {
                impl_->log("hapd: worker error (non-standard exception)");
            }
        },
        std::max<std::size_t>(impl_->opts.max_pending, 1));
    impl_->pool->submit([this] { impl_->accept_loop(); });
    impl_->log("hapd: listening on " + endpoint() +
               (impl_->opts.cache_path.empty()
                    ? std::string(" (memory-only cache)")
                    : " (cache " + impl_->opts.cache_path + ", " +
                          std::to_string(impl_->point_cache.loaded()) +
                          " points restored)"));
    if (obs::enabled())
        obs::registry().add_counter("hapd.cache.loaded", impl_->point_cache.loaded());
}

void Hapd::wait() {
    std::unique_lock<std::mutex> lock(impl_->stop_mutex);
    impl_->stop_cv.wait(lock, [&] { return impl_->stop_requested; });
}

void Hapd::stop() {
    impl_->request_stop();
    if (impl_->pool) {
        // Drain, not abandon: handlers notice `stopping` at their next 200 ms
        // poll tick, finish (and answer) the request in hand, and queued
        // connections get an explicit shutting-down error instead of a lost
        // reply. Every completed solve reaches the cache file before exit.
        impl_->pool->drain();
        impl_->pool.reset();
    }
    if (impl_->listen_fd >= 0) {
        (void)::close(impl_->listen_fd);
        impl_->listen_fd = -1;
        if (!impl_->opts.socket_path.empty())
            (void)::unlink(impl_->opts.socket_path.c_str());
    }
}

int Hapd::port() const noexcept { return impl_->resolved_port; }

std::string Hapd::endpoint() const {
    if (!impl_->opts.socket_path.empty()) return "unix:" + impl_->opts.socket_path;
    return "tcp:127.0.0.1:" + std::to_string(impl_->resolved_port);
}

const PointCache& Hapd::cache() const { return impl_->point_cache; }

}  // namespace hap::service
