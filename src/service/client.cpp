#include "service/client.hpp"

#include <netinet/in.h>
#include <arpa/inet.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

namespace hap::service {

Client Client::connect_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " + path);
    path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("cannot create socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw std::runtime_error("cannot connect to " + path);
    }
    return Client(fd);
}

Client Client::connect_tcp(int port, const std::string& host) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("bad host address: " + host);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("cannot create socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw std::runtime_error("cannot connect to " + host + ":" +
                                 std::to_string(port));
    }
    return Client(fd);
}

Client::~Client() {
    if (fd_ >= 0) (void)::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
    other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) (void)::close(fd_);
        fd_ = other.fd_;
        reader_ = std::move(other.reader_);
        other.fd_ = -1;
    }
    return *this;
}

void Client::send_raw(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error("send failed (connection lost)");
        }
        off += static_cast<std::size_t>(n);
    }
}

void Client::send(const std::string& body) { send_raw(encode_frame(body)); }

std::optional<std::string> Client::recv() {
    for (;;) {
        if (auto body = reader_.next()) return body;
        if (reader_.failed())
            throw std::runtime_error("response framing error: " + reader_.error());
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) return std::nullopt;
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error("recv failed (connection lost)");
        }
        reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
}

std::string Client::call(const std::string& body) {
    send(body);
    auto response = recv();
    if (!response.has_value())
        throw std::runtime_error("connection closed before a response arrived");
    return *response;
}

void Client::shutdown_write() {
    if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

}  // namespace hap::service
