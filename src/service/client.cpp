#include "service/client.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "experiment/faultinject.hpp"
#include "experiment/json.hpp"

namespace hap::service {

namespace {

// Connect with a bounded wait: non-blocking connect, poll for writability
// until the deadline, then read the socket's own error. timeout_ms <= 0
// blocks indefinitely (but still survives EINTR, which a plain blocking
// connect does not — an interrupted connect keeps going asynchronously and
// must be waited on, not re-issued). Returns false on failure/timeout.
bool connect_bounded(int fd, const sockaddr* addr, socklen_t len, int timeout_ms) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
    bool pending = false;
    if (::connect(fd, addr, len) != 0) {
        if (errno != EINPROGRESS && errno != EINTR) return false;
        pending = true;
    }
    if (pending) {
        using Clock = std::chrono::steady_clock;
        const Clock::time_point deadline =
            Clock::now() + std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
        for (;;) {
            int wait = -1;
            if (timeout_ms > 0) {
                const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now());
                if (left.count() <= 0) return false;  // timed out
                wait = static_cast<int>(left.count());
            }
            pollfd p{};
            p.fd = fd;
            p.events = POLLOUT;
            const int rc = ::poll(&p, 1, wait);
            if (rc < 0) {
                if (errno == EINTR) continue;
                return false;
            }
            if (rc == 0) return false;  // timed out
            break;
        }
        int err = 0;
        socklen_t errlen = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen) != 0 || err != 0)
            return false;
    }
    return ::fcntl(fd, F_SETFL, flags) >= 0;  // restore blocking mode
}

}  // namespace

Client Client::connect_unix(const std::string& path, int connect_timeout_ms) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " + path);
    path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("cannot create socket");
    if (!connect_bounded(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                         connect_timeout_ms)) {
        ::close(fd);
        throw std::runtime_error("cannot connect to " + path);
    }
    return Client(fd);
}

Client Client::connect_tcp(int port, const std::string& host, int connect_timeout_ms) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("bad host address: " + host);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("cannot create socket");
    if (!connect_bounded(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr),
                         connect_timeout_ms)) {
        ::close(fd);
        throw std::runtime_error("cannot connect to " + host + ":" +
                                 std::to_string(port));
    }
    return Client(fd);
}

Client::~Client() {
    if (fd_ >= 0) (void)::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
    other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) (void)::close(fd_);
        fd_ = other.fd_;
        reader_ = std::move(other.reader_);
        other.fd_ = -1;
    }
    return *this;
}

void Client::send_raw(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error("send failed (connection lost)");
        }
        off += static_cast<std::size_t>(n);
    }
}

void Client::send(const std::string& body) {
    const std::string frame = encode_frame(body);
    // Chaos hooks (HAP_FAULT_INJECT, faultinject.hpp): a misbehaving-client
    // simulation lives HERE, on the client side, so the daemon under test is
    // the stock binary. slowloris@conn[#ms] dribbles one byte per `ms`;
    // torn_frame@conn sends half the frame and half-closes.
    if (const auto dribble = experiment::fault_value(
            experiment::FaultKind::Slowloris, "conn")) {
        for (std::size_t i = 0; i < frame.size(); ++i) {
            send_raw(std::string_view(frame.data() + i, 1));
            std::this_thread::sleep_for(std::chrono::milliseconds(*dribble));
        }
        return;
    }
    if (experiment::fault_value(experiment::FaultKind::TornFrame, "conn")) {
        send_raw(std::string_view(frame).substr(0, frame.size() / 2));
        shutdown_write();
        return;
    }
    send_raw(frame);
}

std::optional<std::string> Client::recv() {
    for (;;) {
        if (auto body = reader_.next()) return body;
        if (reader_.failed())
            throw std::runtime_error("response framing error: " + reader_.error());
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) return std::nullopt;
        if (n < 0) {
            if (errno == EINTR) continue;
            throw std::runtime_error("recv failed (connection lost)");
        }
        reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
}

std::string Client::call(const std::string& body) {
    send(body);
    auto response = recv();
    if (!response.has_value())
        throw std::runtime_error("connection closed before a response arrived");
    return *response;
}

void Client::shutdown_write() {
    if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

namespace {

// SplitMix64: the jitter stream. Tiny, seedable, and stateless beyond one
// word — the whole backoff schedule is a pure function of RetryPolicy::seed.
std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

CallOutcome call_with_retry(const std::function<Client()>& connect,
                            const std::string& body, const RetryPolicy& policy) {
    using experiment::Json;
    CallOutcome out;
    std::uint64_t jitter_state = policy.seed;
    std::string last_error;
    for (std::size_t attempt = 0;; ++attempt) {
        out.attempts = attempt + 1;
        std::uint64_t server_hint = 0;
        bool have_body = false;
        bool overloaded = false;
        try {
            Client c = connect();
            out.body = c.call(body);
            have_body = true;
            try {
                const Json j = Json::parse(out.body);
                const Json* code = j.find("code");
                if (code != nullptr && code->type() == Json::Type::String &&
                    code->as_string() == "overloaded") {
                    overloaded = true;
                    const Json* hint = j.find("retry_after_ms");
                    if (hint != nullptr && hint->type() == Json::Type::Int &&
                        hint->as_int() > 0)
                        server_hint = static_cast<std::uint64_t>(hint->as_int());
                }
            } catch (const std::exception&) {
                // Unparseable response body: hand it back untouched.
            }
            if (!overloaded) return out;
            last_error = "server overloaded";
        } catch (const std::exception& e) {
            last_error = e.what();  // refused, timed out, or lost mid-call
        }
        if (attempt >= policy.max_retries) {
            // Out of attempts: a final overloaded frame is still a typed
            // answer the caller can render; no response at all is a failure.
            if (have_body) return out;
            throw std::runtime_error("hapd call failed after " +
                                     std::to_string(out.attempts) +
                                     " attempt(s): " + last_error);
        }
        std::uint64_t wait =
            policy.base_ms << std::min<std::size_t>(attempt, std::size_t{20});
        wait = std::min(wait, policy.max_ms);
        if (policy.jitter_ms > 0)
            wait += splitmix64(jitter_state) % (policy.jitter_ms + 1);
        wait = std::max(wait, server_hint);
        out.waited_ms += wait;
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
}

}  // namespace hap::service
