// Event-driven simulation kernel: a simulation clock plus a time-ordered
// event calendar with O(log n) insert/extract and lazy cancellation.
// Ties are broken by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace hap::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Simulator {
public:
    using Action = std::function<void()>;

    double now() const noexcept { return now_; }
    std::uint64_t events_processed() const noexcept { return processed_; }
    std::size_t pending() const noexcept { return actions_.size(); }

    // Schedule `action` to run `delay` time units from now (delay >= 0).
    EventId schedule(double delay, Action action);
    // Schedule at an absolute time >= now().
    EventId schedule_at(double time, Action action);

    // Cancel a pending event. Safe to call with an already-fired or invalid
    // id; returns whether a pending event was actually cancelled.
    bool cancel(EventId id);

    // Run until the calendar is empty, `until` is reached, or stop() is
    // called. Events scheduled exactly at `until` do not run; the clock is
    // advanced to `until` on return.
    void run_until(double until);
    // Run until the calendar drains or stop() is called.
    void run();
    // Request termination from within an event handler.
    void stop() noexcept { stopped_ = true; }
    bool stopped() const noexcept { return stopped_; }

private:
    struct Entry {
        double time;
        EventId id;
        bool operator>(const Entry& o) const noexcept {
            return time > o.time || (time == o.time && id > o.id);  // haplint: allow(float-equality) deterministic tie-break on bitwise-equal times
        }
    };

    bool pop_next(Entry& out);

    double now_ = 0.0;
    EventId next_id_ = 1;
    std::uint64_t processed_ = 0;
    bool stopped_ = false;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_map<EventId, Action> actions_;
};

}  // namespace hap::sim
