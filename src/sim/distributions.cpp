#include "sim/distributions.hpp"

#include <cmath>
#include <numeric>

namespace hap::sim {

HyperExponential::HyperExponential(std::vector<double> probs, std::vector<double> rates)
    : probs_(std::move(probs)), rates_(std::move(rates)) {
    if (probs_.empty() || probs_.size() != rates_.size())
        throw std::invalid_argument("HyperExponential: size mismatch");
    double total = 0.0;
    for (std::size_t i = 0; i < probs_.size(); ++i) {
        if (probs_[i] < 0.0 || rates_[i] <= 0.0)
            throw std::invalid_argument("HyperExponential: bad component");
        total += probs_[i];
    }
    if (std::abs(total - 1.0) > 1e-9)
        throw std::invalid_argument("HyperExponential: probabilities must sum to 1");
}

double HyperExponential::sample(RandomStream& rng) const {
    double u = rng.uniform();
    for (std::size_t i = 0; i < probs_.size(); ++i) {
        if (u < probs_[i] || i + 1 == probs_.size()) return rng.exponential(rates_[i]);
        u -= probs_[i];
    }
    return rng.exponential(rates_.back());
}

double HyperExponential::mean() const {
    double m = 0.0;
    for (std::size_t i = 0; i < probs_.size(); ++i) m += probs_[i] / rates_[i];
    return m;
}

double HyperExponential::variance() const {
    double m = mean();
    double m2 = 0.0;
    for (std::size_t i = 0; i < probs_.size(); ++i)
        m2 += 2.0 * probs_[i] / (rates_[i] * rates_[i]);
    return m2 - m * m;
}

}  // namespace hap::sim
