#include "sim/simulator.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace hap::sim {

EventId Simulator::schedule(double delay, Action action) {
    if (delay < 0.0) throw std::invalid_argument("Simulator::schedule: negative delay");
    return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(double time, Action action) {
    if (time < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
    const EventId id = next_id_++;
    heap_.push(Entry{time, id});
    actions_.emplace(id, std::move(action));
    return id;
}

bool Simulator::cancel(EventId id) { return actions_.erase(id) > 0; }

bool Simulator::pop_next(Entry& out) {
    while (!heap_.empty()) {
        const Entry top = heap_.top();
        heap_.pop();
        if (actions_.find(top.id) != actions_.end()) {
            out = top;
            return true;
        }
        // Cancelled entry: skip lazily.
    }
    return false;
}

void Simulator::run_until(double until) {
    stopped_ = false;
    const std::uint64_t before = processed_;
    Entry e{};
    while (!stopped_ && pop_next(e)) {
        if (e.time >= until) {
            // Put it back; it belongs to a later epoch.
            heap_.push(e);
            break;
        }
        now_ = e.time;
        auto it = actions_.find(e.id);
        Action action = std::move(it->second);
        actions_.erase(it);
        ++processed_;
        action();
    }
    if (!stopped_ && now_ < until) now_ = until;
    // Batched: the event loop never touches the registry per event.
    if (obs::enabled()) obs::registry().add_counter("sim.events", processed_ - before);
}

void Simulator::run() {
    stopped_ = false;
    const std::uint64_t before = processed_;
    Entry e{};
    while (!stopped_ && pop_next(e)) {
        now_ = e.time;
        auto it = actions_.find(e.id);
        Action action = std::move(it->second);
        actions_.erase(it);
        ++processed_;
        action();
    }
    if (obs::enabled()) obs::registry().add_counter("sim.events", processed_ - before);
}

}  // namespace hap::sim
