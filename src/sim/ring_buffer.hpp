// Power-of-two ring buffer: the FIFO backing the simulation event engines.
//
// std::deque pays for its generality in the event loops — segmented storage
// (pointer chase per access), allocation churn at segment boundaries, and
// iterator bookkeeping. The queues in the simulators are plain FIFOs whose
// occupancy tracks the number-in-system, so a contiguous ring with power-of-
// two wraparound does the same job with one mask per access and zero
// allocations at steady state. Growth doubles the capacity and re-linearizes
// the live range; elements must be trivially relocatable (the engines store
// PODs: arrival timestamps, queued-message records).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace hap::sim {

template <typename T>
class RingBuffer {
public:
    explicit RingBuffer(std::size_t min_capacity = 64) {
        std::size_t cap = 1;
        while (cap < min_capacity) cap <<= 1;
        slots_ = std::make_unique<T[]>(cap);
        mask_ = cap - 1;
    }

    bool empty() const noexcept { return size_ == 0; }
    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return mask_ + 1; }

    const T& front() const noexcept {
        assert(size_ > 0);
        return slots_[head_];
    }
    T& front() noexcept {
        assert(size_ > 0);
        return slots_[head_];
    }
    // The head slot regardless of occupancy. Slots are value-initialized
    // (make_unique<T[]>), so this is a defined read even when empty() — it
    // lets callers turn "empty ? fallback : front().field" into an
    // unconditional load plus a select instead of a data-dependent branch.
    const T& front_slot() const noexcept { return slots_[head_]; }

    void push_back(const T& value) {
        if (size_ > mask_) grow();
        slots_[(head_ + size_) & mask_] = value;
        ++size_;
    }

    T pop_front() noexcept {
        assert(size_ > 0);
        T out = std::move(slots_[head_]);
        head_ = (head_ + 1) & mask_;
        --size_;
        return out;
    }

    void clear() noexcept {
        head_ = 0;
        size_ = 0;
    }

private:
    // Double the capacity, re-linearizing the live elements to slot 0 so the
    // post-growth layout is independent of where the head happened to sit.
    void grow() {
        const std::size_t cap = capacity() * 2;
        auto next = std::make_unique<T[]>(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(slots_[(head_ + i) & mask_]);
        slots_ = std::move(next);
        mask_ = cap - 1;
        head_ = 0;
    }

    std::unique_ptr<T[]> slots_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace hap::sim
