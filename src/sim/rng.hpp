// Random-number streams for simulation. Each stochastic component gets its
// own stream, derived from a master seed with SplitMix64, so results are
// reproducible and components are statistically independent.
//
// Replicated experiments use the counter-based derivation substream_seed():
// a pure function of (master seed, run id, component id), so replication k
// of component "fig12.load" draws exactly the same numbers no matter how
// many threads the experiment pool has or which thread picks the job up.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <string_view>

namespace hap::sim {

// SplitMix64 step; used to derive independent substream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

// Counter-based substream seed derivation: each input is absorbed through a
// full SplitMix64 mix, so (run_id, component_id) and (component_id, run_id)
// land in unrelated streams.
constexpr std::uint64_t substream_seed(std::uint64_t master, std::uint64_t run_id,
                                       std::uint64_t component_id) noexcept {
    std::uint64_t s = master;
    s = splitmix64(s) ^ run_id;
    s = splitmix64(s) ^ component_id;
    return splitmix64(s);
}

// FNV-1a hash of a component name, usable as the component_id above.
// Benches and experiments name their streams ("fig12.load=0.8") instead of
// hand-rolling seed arithmetic.
constexpr std::uint64_t component_id(std::string_view name) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

class RandomStream {
public:
    explicit RandomStream(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

    // Deterministic replication stream: identical draws for a given
    // (master, run_id, component_id) regardless of thread count or order.
    static RandomStream substream(std::uint64_t master, std::uint64_t run_id,
                                  std::uint64_t component_id) {
        return RandomStream(substream_seed(master, run_id, component_id));
    }

    // Derive a reproducible child stream; distinct calls yield distinct seeds.
    RandomStream fork() {
        std::uint64_t s = engine_();
        return RandomStream(splitmix64(s));
    }

    double uniform() { return uniform_(engine_); }  // U(0,1)
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    // Batch refill for BlockRng: out[0..n) receive exactly the doubles the
    // next n uniform() calls would have returned, in order. Kept here (not in
    // BlockRng) so the conversion goes through the one distribution object
    // whose draws define the repo's golden sequences.
    void fill_uniforms(double* out, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) out[i] = uniform_(engine_);
    }

    // Exponential with given rate (mean 1/rate).
    double exponential(double rate) {
        // Inversion keeps one draw per variate and is monotone in the
        // underlying uniform, which helps common-random-number comparisons.
        return -std::log1p(-uniform()) / rate;
    }

    bool bernoulli(double p) { return uniform() < p; }

    std::uint64_t next_u64() { return engine_(); }

    // Integer in [0, n); requires n < 2^53 so the scaled uniform stays exact.
    std::uint64_t below(std::uint64_t n) {
        return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
    }

    std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

// Cache-resident block of uniforms drawn off a RandomStream.
//
// The event engines consume 2-3 uniforms per event; drawing them one at a
// time puts the Mersenne twist and the canonical conversion (with its
// integer->double divide) on the event loop's critical path. BlockRng
// refills a small buffer in one tight pass — the conversions pipeline
// instead of serializing against simulation logic — and the hot path is a
// load + pointer bump.
//
// Draw-sequence contract (the property every golden test leans on):
//   * uniform() returns exactly the sequence stream.uniform() would have —
//     the refill goes through the same distribution object, in order;
//   * the underlying stream is never left over-drawn: each refill snapshots
//     the engine first, and finish() rewinds to the snapshot and replays
//     only the consumed draws. After finish(), the RandomStream's state is
//     byte-identical to scalar use, so callers that keep drawing from the
//     same stream (back-to-back simulations, shared service streams) see an
//     unchanged future sequence.
//
// finish() runs from the destructor, so scoping a BlockRng over a hot loop
// is enough; the replay costs at most one block of draws, once.
class BlockRng {
public:
    static constexpr std::size_t kBlock = 512;

    explicit BlockRng(RandomStream& stream) : stream_(stream) {}
    ~BlockRng() { finish(); }
    BlockRng(const BlockRng&) = delete;
    BlockRng& operator=(const BlockRng&) = delete;

    double uniform() {
        if (pos_ == filled_) refill();
        return buf_[pos_++];
    }

    // Exponential with given rate; same inversion as RandomStream::exponential.
    double exponential(double rate) {
        return -std::log1p(-uniform()) / rate;
    }

    // Rewind the stream to the last snapshot and replay exactly the draws
    // consumed, restoring the state scalar use would have produced.
    void finish() {
        if (filled_ == 0) return;  // never refilled: stream untouched
        stream_.engine() = snapshot_;
        double sink = 0.0;
        for (std::size_t i = 0; i < pos_; ++i) sink = stream_.uniform();
        (void)sink;
        pos_ = 0;
        filled_ = 0;
    }

private:
    void refill() {
        snapshot_ = stream_.engine();
        stream_.fill_uniforms(buf_, kBlock);
        pos_ = 0;
        filled_ = kBlock;
    }

    RandomStream& stream_;
    std::mt19937_64 snapshot_;
    std::size_t pos_ = 0;
    std::size_t filled_ = 0;
    double buf_[kBlock];
};

}  // namespace hap::sim
