// Random-number streams for simulation. Each stochastic component gets its
// own stream, derived from a master seed with SplitMix64, so results are
// reproducible and components are statistically independent.
#pragma once

#include <cstdint>
#include <random>

namespace hap::sim {

// SplitMix64 step; used to derive independent substream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d4a7c15f4a7c15ULL;
    return z ^ (z >> 31);
}

class RandomStream {
public:
    explicit RandomStream(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

    // Derive a reproducible child stream; distinct calls yield distinct seeds.
    RandomStream fork() {
        std::uint64_t s = engine_();
        return RandomStream(splitmix64(s));
    }

    double uniform() { return uniform_(engine_); }  // U(0,1)
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    // Exponential with given rate (mean 1/rate).
    double exponential(double rate) {
        // Inversion keeps one draw per variate and is monotone in the
        // underlying uniform, which helps common-random-number comparisons.
        return -std::log1p(-uniform()) / rate;
    }

    bool bernoulli(double p) { return uniform() < p; }

    std::uint64_t next_u64() { return engine_(); }

    // Integer in [0, n).
    std::uint64_t below(std::uint64_t n) {
        return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
    }

    std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace hap::sim
