// Sampleable holding/service-time distributions for the instance-level HAP
// simulator. The paper's analysis assumes exponential parameters throughout;
// the simulator also accepts the alternatives below so the exponential
// assumption itself can be probed (a "future work" direction in the paper).
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace hap::sim {

class Distribution {
public:
    virtual ~Distribution() = default;
    virtual double sample(RandomStream& rng) const = 0;
    virtual double mean() const = 0;
    virtual double variance() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

class Exponential final : public Distribution {
public:
    explicit Exponential(double rate) : rate_(rate) {
        if (rate <= 0.0) throw std::invalid_argument("Exponential: rate <= 0");
    }
    double sample(RandomStream& rng) const override { return rng.exponential(rate_); }
    double mean() const override { return 1.0 / rate_; }
    double variance() const override { return 1.0 / (rate_ * rate_); }
    double rate() const noexcept { return rate_; }

private:
    double rate_;
};

class Deterministic final : public Distribution {
public:
    explicit Deterministic(double value) : value_(value) {
        if (value < 0.0) throw std::invalid_argument("Deterministic: negative value");
    }
    double sample(RandomStream&) const override { return value_; }
    double mean() const override { return value_; }
    double variance() const override { return 0.0; }

private:
    double value_;
};

class Uniform final : public Distribution {
public:
    Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
        if (!(hi >= lo) || lo < 0.0) throw std::invalid_argument("Uniform: bad range");
    }
    double sample(RandomStream& rng) const override { return rng.uniform(lo_, hi_); }
    double mean() const override { return 0.5 * (lo_ + hi_); }
    double variance() const override { return (hi_ - lo_) * (hi_ - lo_) / 12.0; }

private:
    double lo_, hi_;
};

// Sum of k exponential phases (SCV = 1/k < 1).
class Erlang final : public Distribution {
public:
    Erlang(int k, double phase_rate) : k_(k), rate_(phase_rate) {
        if (k < 1 || phase_rate <= 0.0) throw std::invalid_argument("Erlang: bad params");
    }
    double sample(RandomStream& rng) const override {
        double total = 0.0;
        for (int i = 0; i < k_; ++i) total += rng.exponential(rate_);
        return total;
    }
    double mean() const override { return k_ / rate_; }
    double variance() const override { return k_ / (rate_ * rate_); }

private:
    int k_;
    double rate_;
};

// Probabilistic mixture of exponentials (SCV > 1).
class HyperExponential final : public Distribution {
public:
    HyperExponential(std::vector<double> probs, std::vector<double> rates);
    double sample(RandomStream& rng) const override;
    double mean() const override;
    double variance() const override;

private:
    std::vector<double> probs_;
    std::vector<double> rates_;
};

inline DistributionPtr exponential(double rate) {
    return std::make_shared<Exponential>(rate);
}
inline DistributionPtr deterministic(double v) {
    return std::make_shared<Deterministic>(v);
}

}  // namespace hap::sim
