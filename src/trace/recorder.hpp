// On-change time-series recorder with coalescing. Long simulations produce
// hundreds of millions of queue-length changes; the recorder keeps the series
// plottable by sampling at a minimum time resolution while always retaining
// local maxima (so congestion "mountains" keep their true peaks).
#pragma once

#include <cstdint>
#include <vector>

namespace hap::trace {

struct TimePoint {
    double time;
    double value;
};

class SeriesRecorder {
public:
    // `resolution`: minimum spacing between retained points; 0 keeps all.
    explicit SeriesRecorder(double resolution = 0.0) noexcept
        : resolution_(resolution) {}

    void record(double time, double value);
    // Flush the pending peak (call once after the final record).
    void finish();

    const std::vector<TimePoint>& points() const noexcept { return points_; }
    std::size_t size() const noexcept { return points_.size(); }
    double max_value() const noexcept { return max_value_; }
    double time_of_max() const noexcept { return time_of_max_; }

private:
    double resolution_;
    std::vector<TimePoint> points_;
    bool has_pending_ = false;
    TimePoint pending_peak_{0.0, 0.0};
    double window_start_ = 0.0;
    double max_value_ = 0.0;
    double time_of_max_ = 0.0;
};

}  // namespace hap::trace
