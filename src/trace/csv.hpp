// Minimal CSV emission for benchmark/replication artifacts. Writers are
// deliberately dumb: a header row plus numeric rows, locale-independent.
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace hap::trace {

class CsvWriter {
public:
    // Throws std::runtime_error if the file cannot be opened.
    CsvWriter(const std::string& path, std::vector<std::string> columns);

    void row(std::span<const double> values);
    const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    std::ofstream out_;
    std::size_t columns_;
};

}  // namespace hap::trace
