#include "trace/arrival_log.hpp"

#include <fstream>
#include <limits>
#include <stdexcept>

namespace hap::trace {

void write_arrival_trace(const std::string& path, std::span<const double> times,
                         const std::string& comment) {
    for (std::size_t i = 1; i < times.size(); ++i)
        if (times[i] < times[i - 1])
            throw std::invalid_argument("write_arrival_trace: times not sorted");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_arrival_trace: cannot open " + path);
    if (!comment.empty()) out << "# " << comment << '\n';
    out << "# arrival-trace v1, " << times.size() << " events\n";
    out.precision(15);
    for (double t : times) out << t << '\n';
    if (!out) throw std::runtime_error("write_arrival_trace: write failed on " + path);
}

std::vector<double> read_arrival_trace(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_arrival_trace: cannot open " + path);
    std::vector<double> times;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        times.push_back(std::stod(line));
        if (times.size() >= 2 && times.back() < times[times.size() - 2])
            throw std::runtime_error("read_arrival_trace: unsorted trace in " + path);
    }
    return times;
}

TraceReplaySource::TraceReplaySource(std::vector<double> times)
    : times_(std::move(times)) {
    for (std::size_t i = 1; i < times_.size(); ++i)
        if (times_[i] < times_[i - 1])
            throw std::invalid_argument("TraceReplaySource: times not sorted");
}

double TraceReplaySource::next(sim::RandomStream&) {
    if (index_ >= times_.size()) return std::numeric_limits<double>::infinity();
    return times_[index_++];
}

double TraceReplaySource::mean_rate() const {
    if (times_.size() < 2) return 0.0;
    const double span = times_.back() - times_.front();
    return span > 0.0 ? static_cast<double>(times_.size() - 1) / span : 0.0;
}

}  // namespace hap::trace
