#include "trace/recorder.hpp"

namespace hap::trace {

void SeriesRecorder::record(double time, double value) {
    if (value > max_value_) {
        max_value_ = value;
        time_of_max_ = time;
    }
    if (resolution_ <= 0.0) {
        points_.push_back(TimePoint{time, value});
        return;
    }
    if (!has_pending_) {
        window_start_ = time;
        pending_peak_ = TimePoint{time, value};
        has_pending_ = true;
        return;
    }
    if (value >= pending_peak_.value) pending_peak_ = TimePoint{time, value};
    if (time - window_start_ >= resolution_) {
        points_.push_back(pending_peak_);
        window_start_ = time;
        pending_peak_ = TimePoint{time, value};
    }
}

void SeriesRecorder::finish() {
    if (has_pending_ && resolution_ > 0.0) {
        points_.push_back(pending_peak_);
        has_pending_ = false;
    }
}

}  // namespace hap::trace
