// Arrival-trace capture and replay. The paper's motivation is the gap
// between analytic models and TRACE-DRIVEN simulation [6]; this module closes
// the loop: capture a synthetic (or external) arrival trace to a plain text
// file, replay it later as an ArrivalProcess, and feed it to any queue
// kernel. Format: one ASCII float per line, absolute arrival times,
// strictly nondecreasing; '#' lines are comments.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "traffic/arrival_process.hpp"

namespace hap::trace {

// Write arrival times to `path`. Throws std::runtime_error on I/O failure,
// std::invalid_argument if times are not sorted.
void write_arrival_trace(const std::string& path, std::span<const double> times,
                         const std::string& comment = "");

// Read a trace written by write_arrival_trace (or any conforming file).
std::vector<double> read_arrival_trace(const std::string& path);

// Replay a recorded trace as an arrival process. The mean rate is the
// empirical rate over the trace span. next() past the end returns +infinity
// (the stream is exhausted); reset() rewinds.
class TraceReplaySource final : public traffic::ArrivalProcess {
public:
    explicit TraceReplaySource(std::vector<double> times);

    double next(sim::RandomStream&) override;
    double mean_rate() const override;
    void reset() override { index_ = 0; }

    std::size_t size() const noexcept { return times_.size(); }
    std::size_t position() const noexcept { return index_; }

private:
    std::vector<double> times_;
    std::size_t index_ = 0;
};

}  // namespace hap::trace
