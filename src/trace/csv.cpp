#include "trace/csv.hpp"

#include <stdexcept>

namespace hap::trace {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_(path), out_(path), columns_(columns.size()) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
    if (columns.empty()) throw std::invalid_argument("CsvWriter: no columns");
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) out_ << ',';
        out_ << columns[i];
    }
    out_ << '\n';
}

void CsvWriter::row(std::span<const double> values) {
    if (values.size() != columns_)
        throw std::invalid_argument("CsvWriter::row: column count mismatch");
    out_.precision(12);
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) out_ << ',';
        out_ << values[i];
    }
    out_ << '\n';
}

}  // namespace hap::trace
