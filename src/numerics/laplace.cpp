#include "numerics/laplace.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"

namespace hap::numerics {

double laplace_transform(const std::function<double(double)>& density, double s,
                         const QuadratureOptions& opts) {
    HAP_CHECK_FINITE(s);
    if (s < 0.0) throw std::invalid_argument("laplace_transform: s < 0");
    return integrate_to_infinity([&](double t) { return density(t) * std::exp(-s * t); },
                                 opts);
}

double ExponentialMixture::transform(double s) const {
    HAP_CHECK_FINITE(s);
    double total = 0.0;
    for (std::size_t k = 0; k < rates.size(); ++k) {
        if (rates[k] <= 0.0) continue;
        total += weights[k] * rates[k] / (rates[k] + s);
    }
    return total;
}

double ExponentialMixture::density(double t) const {
    HAP_CHECK_FINITE(t);
    double total = 0.0;
    for (std::size_t k = 0; k < rates.size(); ++k) {
        if (rates[k] <= 0.0) continue;
        total += weights[k] * rates[k] * std::exp(-rates[k] * t);
    }
    return total;
}

double ExponentialMixture::cdf(double t) const {
    HAP_CHECK_FINITE(t);
    double total = 0.0;
    for (std::size_t k = 0; k < rates.size(); ++k) {
        if (rates[k] <= 0.0) continue;
        total += weights[k] * (1.0 - std::exp(-rates[k] * t));
    }
    return total;
}

double ExponentialMixture::mean() const {
    double total = 0.0;
    for (std::size_t k = 0; k < rates.size(); ++k) {
        if (rates[k] <= 0.0) continue;
        total += weights[k] / rates[k];
    }
    return total;
}

double ExponentialMixture::second_moment() const {
    double total = 0.0;
    for (std::size_t k = 0; k < rates.size(); ++k) {
        if (rates[k] <= 0.0) continue;
        total += 2.0 * weights[k] / (rates[k] * rates[k]);
    }
    return total;
}

double ExponentialMixture::total_weight() const {
    double total = 0.0;
    for (double w : weights) total += w;
    return total;
}

}  // namespace hap::numerics
