#include "numerics/roots.hpp"

#include <cmath>

#include "core/contracts.hpp"

namespace hap::numerics {

namespace {

void report_iterations(const RootOptions& opts, int used) {
    if (opts.iterations_out != nullptr) *opts.iterations_out = used;
}

}  // namespace

std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, const RootOptions& opts) {
    HAP_CHECK_FINITE(lo);
    HAP_CHECK_FINITE(hi);
    report_iterations(opts, 0);
    double flo = f(lo);
    double fhi = f(hi);
    if (flo == 0.0) return lo;  // haplint: allow(float-equality) exact root: no tolerance can improve it
    if (fhi == 0.0) return hi;  // haplint: allow(float-equality) exact root: no tolerance can improve it
    if (std::signbit(flo) == std::signbit(fhi)) return std::nullopt;
    for (int i = 0; i < opts.max_iter; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if (fmid == 0.0 || hi - lo < opts.tol) {  // haplint: allow(float-equality) exact root short-circuit ahead of tol test
            report_iterations(opts, i + 1);
            return mid;
        }
        if (std::signbit(fmid) == std::signbit(flo)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    report_iterations(opts, opts.max_iter);
    return 0.5 * (lo + hi);
}

std::optional<double> damped_fixed_point(const std::function<double(double)>& g,
                                         double x0, const RootOptions& opts) {
    HAP_CHECK_FINITE(x0);
    double x = x0;
    for (int i = 0; i < opts.max_iter; ++i) {
        const double gx = g(x);
        if (std::abs(gx - x) < opts.tol) {
            report_iterations(opts, i + 1);
            return gx;
        }
        x = 0.5 * (gx + x);
    }
    report_iterations(opts, opts.max_iter);
    return std::nullopt;
}

std::optional<double> brent(const std::function<double(double)>& f, double lo,
                            double hi, const RootOptions& opts) {
    HAP_CHECK_FINITE(lo);
    HAP_CHECK_FINITE(hi);
    report_iterations(opts, 0);
    double a = lo, b = hi;
    double fa = f(a), fb = f(b);
    if (fa == 0.0) return a;  // haplint: allow(float-equality) exact root: no tolerance can improve it
    if (fb == 0.0) return b;  // haplint: allow(float-equality) exact root: no tolerance can improve it
    if (std::signbit(fa) == std::signbit(fb)) return std::nullopt;
    if (std::abs(fa) < std::abs(fb)) {
        std::swap(a, b);
        std::swap(fa, fb);
    }
    double c = a, fc = fa;
    bool bisected = true;
    double d = 0.0;
    for (int i = 0; i < opts.max_iter; ++i) {
        double s;
        if (fa != fc && fb != fc) {  // haplint: allow(float-equality) IQI needs distinct ordinates bitwise, else divides by 0
            // Inverse quadratic interpolation.
            s = a * fb * fc / ((fa - fb) * (fa - fc)) +
                b * fa * fc / ((fb - fa) * (fb - fc)) +
                c * fa * fb / ((fc - fa) * (fc - fb));
        } else {
            s = b - fb * (b - a) / (fb - fa);  // secant
        }
        const double mid = 0.5 * (a + b);
        const bool out_of_range = (s < std::min(mid, b) || s > std::max(mid, b));
        const bool slow = bisected ? std::abs(s - b) >= 0.5 * std::abs(b - c)
                                   : std::abs(s - b) >= 0.5 * std::abs(c - d);
        if (out_of_range || slow || std::abs(b - c) < opts.tol) {
            s = mid;
            bisected = true;
        } else {
            bisected = false;
        }
        const double fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if (std::signbit(fa) != std::signbit(fs)) {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if (std::abs(fa) < std::abs(fb)) {
            std::swap(a, b);
            std::swap(fa, fb);
        }
        if (fb == 0.0 || std::abs(b - a) < opts.tol) {  // haplint: allow(float-equality) exact root short-circuit ahead of tol test
            report_iterations(opts, i + 1);
            return b;
        }
    }
    report_iterations(opts, opts.max_iter);
    return b;
}

}  // namespace hap::numerics
