// Scalar root finding and fixed-point iteration. The G/M/1 analysis needs a
// robust solver for sigma = A*(mu - mu*sigma) on (0, 1); the paper's own
// averaging iteration is provided alongside a bracketing fallback.
#pragma once

#include <functional>
#include <optional>

namespace hap::numerics {

struct RootOptions {
    double tol = 1e-12;
    int max_iter = 200;
    // When non-null, receives the number of iterations consumed (written on
    // every exit path, including bracket rejection, where it is 0). Callers
    // use it for solver telemetry; it never changes the iteration itself.
    int* iterations_out = nullptr;
};

// Bisection on [lo, hi]; requires f(lo) and f(hi) to have opposite signs.
// Returns nullopt if the bracket is invalid or iteration budget is exhausted
// before reaching tolerance.
std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, const RootOptions& opts = {});

// Damped fixed-point iteration x <- (g(x) + x) / 2 (the paper's
// sigma-algorithm step). Returns nullopt when it fails to converge.
std::optional<double> damped_fixed_point(const std::function<double(double)>& g,
                                         double x0, const RootOptions& opts = {});

// Brent-style hybrid: bisection safeguarded secant. Same bracket contract as
// bisect but converges superlinearly on smooth functions.
std::optional<double> brent(const std::function<double(double)>& f, double lo,
                            double hi, const RootOptions& opts = {});

}  // namespace hap::numerics
