#include "numerics/quadrature.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/contracts.hpp"

namespace hap::numerics {
namespace {

double simpson(double fa, double fm, double fb, double h) {
    return h / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const std::function<double(double)>& f, double a, double b,
                     double fa, double fm, double fb, double whole, double tol,
                     int depth, int max_depth) {
    const double m = 0.5 * (a + b);
    const double lm = 0.5 * (a + m);
    const double rm = 0.5 * (m + b);
    const double flm = f(lm);
    const double frm = f(rm);
    const double left = simpson(fa, flm, fm, m - a);
    const double right = simpson(fm, frm, fb, b - m);
    const double delta = left + right - whole;
    if (depth >= max_depth || std::abs(delta) <= 15.0 * tol)
        return left + right + delta / 15.0;
    return adaptive_step(f, a, m, fa, flm, fm, left, 0.5 * tol, depth + 1, max_depth) +
           adaptive_step(f, m, b, fm, frm, fb, right, 0.5 * tol, depth + 1, max_depth);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 const QuadratureOptions& opts) {
    HAP_CHECK_FINITE(a);
    HAP_CHECK_FINITE(b);
    if (!(a <= b)) throw std::invalid_argument("integrate: a > b");
    if (a == b) return 0.0;  // haplint: allow(float-equality) degenerate interval is exactly empty
    const double m = 0.5 * (a + b);
    const double fa = f(a);
    const double fm = f(m);
    const double fb = f(b);
    const double whole = simpson(fa, fm, fb, b - a);
    const double tol = std::max(opts.abs_tol, opts.rel_tol * std::abs(whole));
    return adaptive_step(f, a, b, fa, fm, fb, whole, tol, 0, opts.max_depth);
}

double integrate_to_infinity(const std::function<double(double)>& f,
                             const QuadratureOptions& opts) {
    double total = 0.0;
    double start = 0.0;
    double len = opts.tail_start;
    for (int block = 0; block < opts.max_tail_blocks; ++block) {
        const double piece = integrate(f, start, start + len, opts);
        total += piece;
        start += len;
        len *= opts.tail_growth;
        const double scale = std::max(std::abs(total), 1e-300);
        if (block > 0 && std::abs(piece) < opts.tail_cutoff * scale) return total;
    }
    return total;
}

GaussLaguerreRule::GaussLaguerreRule(int n) {
    if (n < 2 || n > 64) throw std::invalid_argument("GaussLaguerreRule: n out of range");
    nodes.resize(static_cast<std::size_t>(n));
    weights.resize(static_cast<std::size_t>(n));
    // Newton iteration on Laguerre polynomials (Numerical-Recipes style
    // initial guesses), stable for n <= 64 in double precision.
    double z = 0.0;
    for (int i = 0; i < n; ++i) {
        if (i == 0) {
            z = 3.0 / (1.0 + 2.4 * n);
        } else if (i == 1) {
            z += 15.0 / (1.0 + 2.5 * n);
        } else {
            const double ai = i - 1;
            z += (1.0 + 2.55 * ai) / (1.9 * ai) * (z - nodes[static_cast<std::size_t>(i - 2)]);
        }
        double pp = 0.0;
        for (int iter = 0; iter < 100; ++iter) {
            // Recurrence for L_n(z) and its derivative.
            double p1 = 1.0, p2 = 0.0;
            for (int j = 1; j <= n; ++j) {
                const double p3 = p2;
                p2 = p1;
                p1 = ((2.0 * j - 1.0 - z) * p2 - (j - 1.0) * p3) / j;
            }
            pp = n * (p1 - p2) / z;
            const double z1 = z;
            z = z1 - p1 / pp;
            if (std::abs(z - z1) <= 1e-14 * std::max(1.0, std::abs(z))) break;
        }
        nodes[static_cast<std::size_t>(i)] = z;
        // w_i = -1 / (n * L'_n(x_i) * L_{n-1}(x_i)); expressed via pp.
        double p2 = 0.0;
        {
            double p1 = 1.0;
            for (int j = 1; j <= n; ++j) {
                const double p3 = p2;
                p2 = p1;
                p1 = ((2.0 * j - 1.0 - z) * p2 - (j - 1.0) * p3) / j;
            }
        }
        weights[static_cast<std::size_t>(i)] = -1.0 / (pp * n * p2);
    }
}

double GaussLaguerreRule::integrate(const std::function<double(double)>& f) const {
    double total = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        total += weights[i] * std::exp(nodes[i]) * f(nodes[i]);
    return total;
}

}  // namespace hap::numerics
