// Laplace transforms of probability densities on [0, inf). The G/M/1
// sigma-equation needs A*(s) = int_0^inf a(t) e^{-st} dt for an analytic or
// tabulated interarrival density.
#pragma once

#include <functional>
#include <vector>

#include "numerics/quadrature.hpp"

namespace hap::numerics {

// A*(s) for a callable density. `density` must be integrable on [0, inf).
double laplace_transform(const std::function<double(double)>& density, double s,
                         const QuadratureOptions& opts = {});

// Exact transform of a finite mixture of exponentials:
//   a(t) = sum_k w_k r_k e^{-r_k t}  =>  A*(s) = sum_k w_k r_k / (r_k + s).
// Components with r_k == 0 contribute 0 for s > 0 (a unit mass at infinity),
// matching the rate-weighted-mixture convention of the paper's Solutions 1/2.
struct ExponentialMixture {
    std::vector<double> weights;  // need not sum to 1 if zero-rate mass exists
    std::vector<double> rates;

    double transform(double s) const;
    double density(double t) const;
    double cdf(double t) const;
    double mean() const;          // sum_k w_k / r_k over positive-rate parts
    double second_moment() const; // sum_k 2 w_k / r_k^2
    double total_weight() const;
};

}  // namespace hap::numerics
