#include "numerics/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/contracts.hpp"

namespace hap::numerics {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    HAP_CHECK_FINITE(fill);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix+=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix-=: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(double s) {
    for (double& v : data_) v *= s;
    return *this;
}

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
    if (lhs.cols_ != rhs.rows_) throw std::invalid_argument("Matrix*: shape mismatch");
    Matrix out(lhs.rows_, rhs.cols_);
    // ikj loop order keeps the inner loop contiguous for both operands.
    for (std::size_t i = 0; i < lhs.rows_; ++i) {
        for (std::size_t k = 0; k < lhs.cols_; ++k) {
            const double a = lhs(i, k);
            if (a == 0.0) continue;  // haplint: allow(float-equality) exact-zero sparsity skip; any other value multiplies
            const double* rrow = &rhs.data_[k * rhs.cols_];
            double* orow = &out.data_[i * out.cols_];
            for (std::size_t j = 0; j < rhs.cols_; ++j) orow[j] += a * rrow[j];
        }
    }
    return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
    if (v.size() != cols_) throw std::invalid_argument("Matrix::apply: size mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
        out[i] = std::inner_product(v.begin(), v.end(), data_.begin() + static_cast<long>(i * cols_), 0.0);
    return out;
}

std::vector<double> Matrix::apply_left(const std::vector<double>& v) const {
    if (v.size() != rows_) throw std::invalid_argument("Matrix::apply_left: size mismatch");
    std::vector<double> out(cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        const double a = v[i];
        if (a == 0.0) continue;  // haplint: allow(float-equality) exact-zero sparsity skip; any other value multiplies
        const double* row = &data_[i * cols_];
        for (std::size_t j = 0; j < cols_; ++j) out[j] += a * row[j];
    }
    return out;
}

Matrix Matrix::transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
}

double Matrix::max_abs() const noexcept {
    double m = 0.0;
    for (double v : data_) m = std::max(m, std::abs(v));
    return m;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
    if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LU: matrix not square");
    const std::size_t n = lu_.rows();
    pivot_.resize(n);
    std::iota(pivot_.begin(), pivot_.end(), std::size_t{0});

    for (std::size_t col = 0; col < n; ++col) {
        std::size_t best = col;
        double best_abs = std::abs(lu_(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::abs(lu_(r, col));
            if (v > best_abs) { best = r; best_abs = v; }
        }
        if (best_abs < 1e-300) throw std::domain_error("LU: singular matrix");
        if (best != col) {
            for (std::size_t j = 0; j < n; ++j) std::swap(lu_(col, j), lu_(best, j));
            std::swap(pivot_[col], pivot_[best]);
            pivot_sign_ = -pivot_sign_;
        }
        const double diag = lu_(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = lu_(r, col) / diag;
            lu_(r, col) = factor;
            if (factor == 0.0) continue;  // haplint: allow(float-equality) exact-zero elimination skip
            for (std::size_t j = col + 1; j < n; ++j) lu_(r, j) -= factor * lu_(col, j);
        }
    }
}

std::vector<double> LuDecomposition::solve(const std::vector<double>& b) const {
    const std::size_t n = lu_.rows();
    if (b.size() != n) throw std::invalid_argument("LU::solve: size mismatch");
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[pivot_[i]];
    // Forward substitution (unit lower triangle).
    for (std::size_t i = 1; i < n; ++i)
        for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(ii, j) * x[j];
        x[ii] /= lu_(ii, ii);
    }
    return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
    if (b.rows() != lu_.rows()) throw std::invalid_argument("LU::solve: shape mismatch");
    Matrix out(b.rows(), b.cols());
    std::vector<double> col(b.rows());
    for (std::size_t j = 0; j < b.cols(); ++j) {
        for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
        const std::vector<double> x = solve(col);
        for (std::size_t i = 0; i < b.rows(); ++i) out(i, j) = x[i];
    }
    return out;
}

Matrix LuDecomposition::inverse() const { return solve(Matrix::identity(lu_.rows())); }

double LuDecomposition::determinant() const noexcept {
    double det = pivot_sign_;
    for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
    return det;
}

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
    return LuDecomposition(a).solve(b);
}

Matrix inverse(const Matrix& a) { return LuDecomposition(a).inverse(); }

}  // namespace hap::numerics
