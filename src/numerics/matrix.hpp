// Dense row-major matrix with the small set of linear-algebra operations the
// library needs: products, LU factorization with partial pivoting, linear
// solves, and inverses. Sized for the moderate dimensions that arise from
// truncated modulating chains (up to a few thousand rows).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace hap::numerics {

class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
    // Row-major brace construction: Matrix{{1,2},{3,4}}.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    bool empty() const noexcept { return data_.empty(); }

    double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    Matrix& operator+=(const Matrix& rhs);
    Matrix& operator-=(const Matrix& rhs);
    Matrix& operator*=(double s);

    friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
    friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
    friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
    friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }
    friend Matrix operator*(const Matrix& lhs, const Matrix& rhs);

    // Matrix * column vector.
    std::vector<double> apply(const std::vector<double>& v) const;
    // Row vector * matrix.
    std::vector<double> apply_left(const std::vector<double>& v) const;

    Matrix transposed() const;

    // Largest absolute entry; convenient convergence metric for iterations.
    double max_abs() const noexcept;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

// LU factorization with partial pivoting. Throws std::domain_error on a
// numerically singular matrix.
class LuDecomposition {
public:
    explicit LuDecomposition(Matrix a);

    std::vector<double> solve(const std::vector<double>& b) const;
    Matrix solve(const Matrix& b) const;
    Matrix inverse() const;
    double determinant() const noexcept;

private:
    Matrix lu_;
    std::vector<std::size_t> pivot_;
    int pivot_sign_ = 1;
};

// Convenience one-shot solves.
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);
Matrix inverse(const Matrix& a);

}  // namespace hap::numerics
