// Numerical integration used by the queueing analyzers: adaptive Simpson on
// finite intervals and a tail-splitting scheme for [0, inf) integrands that
// decay exponentially (interarrival densities times e^{-st}).
#pragma once

#include <functional>
#include <vector>

namespace hap::numerics {

struct QuadratureOptions {
    double abs_tol = 1e-10;
    double rel_tol = 1e-9;
    int max_depth = 40;         // recursion limit for adaptive Simpson
    double tail_start = 1.0;    // first tail block length for [0,inf)
    double tail_growth = 2.0;   // geometric growth of tail blocks
    double tail_cutoff = 1e-14; // stop when a block contributes less than this fraction
    int max_tail_blocks = 200;
};

// Adaptive Simpson on [a, b].
double integrate(const std::function<double(double)>& f, double a, double b,
                 const QuadratureOptions& opts = {});

// Integral over [0, inf) of a non-oscillatory integrand that eventually
// decays at least exponentially. Integrates geometric blocks until their
// contribution is negligible relative to the accumulated value.
double integrate_to_infinity(const std::function<double(double)>& f,
                             const QuadratureOptions& opts = {});

// Gauss-Laguerre nodes/weights for integrals of the form
// int_0^inf e^{-x} g(x) dx ~= sum w_i g(x_i). Useful as an independent check
// on the adaptive scheme. n in [2, 64].
struct GaussLaguerreRule {
    explicit GaussLaguerreRule(int n);
    // int_0^inf f(t) dt with f(t) = e^{-t} * (e^{t} f(t)); caller supplies f.
    double integrate(const std::function<double(double)>& f) const;

    std::vector<double> nodes;
    std::vector<double> weights;
};

}  // namespace hap::numerics
