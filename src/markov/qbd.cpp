#include "markov/qbd.hpp"

#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/contracts.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace hap::markov {

using numerics::Matrix;

namespace {

// Power-iteration estimate of the spectral radius; R is nonnegative so the
// iteration converges to the Perron root.
double spectral_radius(const Matrix& r) {
    const std::size_t n = r.rows();
    std::vector<double> v(n, 1.0);
    double lambda = 0.0;
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<double> w = r.apply(v);
        double norm = 0.0;
        for (double x : w) norm = std::max(norm, std::abs(x));
        if (norm == 0.0) return 0.0;  // haplint: allow(float-equality) exact-zero vector short-circuit before normalizing
        for (double& x : w) x /= norm;
        if (std::abs(norm - lambda) < 1e-13 * std::max(1.0, norm)) return norm;
        lambda = norm;
        v.swap(w);
    }
    return lambda;
}

}  // namespace

QbdResult solve_mmpp_m1(const Matrix& phase_generator,
                        const std::vector<double>& arrival_rates,
                        double service_rate, const QbdOptions& opts) {
    const std::size_t n = arrival_rates.size();
    if (n == 0) throw std::invalid_argument("solve_mmpp_m1: empty phase space");
    if (phase_generator.rows() != n || phase_generator.cols() != n)
        throw std::invalid_argument("solve_mmpp_m1: generator shape mismatch");
    if (service_rate <= 0.0) throw std::invalid_argument("solve_mmpp_m1: service_rate <= 0");
    HAP_CHECK_FINITE(service_rate);
    for (double rate : arrival_rates) {
        HAP_CHECK_FINITE(rate);
        HAP_PRECOND(rate >= 0.0);
    }

    obs::ScopedTimer timer("qbd.solve_s");
    const auto record = [n, &timer](const QbdResult& r) {
        if (!obs::enabled()) return;
        if (r.budget_exhausted) obs::registry().add_counter("qbd.budget_exhausted");
        obs::SolverTelemetry t;
        t.solver = "qbd";
        t.iterations = static_cast<std::uint64_t>(r.iterations);
        t.residual = r.residual;
        t.truncation = n;
        t.wall_time_s = timer.stop();
        t.converged = r.converged;
        obs::registry().record_solver(std::move(t));
    };

    // Budget: refuse oversized phase spaces before the O(n^3) setup, tighten
    // the iteration cap deterministically, and arm the wall backstop.
    if (opts.budget.states_exceeded(n)) {
        QbdResult refused;
        refused.budget_exhausted = true;
        record(refused);
        return refused;
    }
    const int max_iter = static_cast<int>(opts.budget.cap_iterations(
        opts.max_iter > 0 ? static_cast<std::size_t>(opts.max_iter) : 0));
    const core::WallDeadline deadline(opts.budget.wall_ms);

    // Stability is decided by the exact drift condition pi . lambda < mu
    // (pi = stationary law of the modulating chain): the spectral radius of
    // R sits extremely close to 1 for bursty chains (rare supercritical
    // phases), where a numerical sp estimate cannot be trusted to one part
    // in 1e-4.
    QbdResult res;
    {
        Matrix a = phase_generator.transposed();
        for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
        std::vector<double> b(n, 0.0);
        b[n - 1] = 1.0;
        const std::vector<double> pi = numerics::solve(a, b);
        res.mean_rate =
            std::inner_product(pi.begin(), pi.end(), arrival_rates.begin(), 0.0);
        res.stable = res.mean_rate < service_rate;
    }

    // Level-transition blocks of the QBD: A0 = diag(arrivals) (up),
    // A1 = Q - A0 - mu I (local), A2 = mu I (down).
    Matrix a1 = phase_generator;
    for (std::size_t i = 0; i < n; ++i) a1(i, i) -= arrival_rates[i] + service_rate;
    Matrix a2(n, n);
    for (std::size_t i = 0; i < n; ++i) a2(i, i) = service_rate;

    // Logarithmic reduction (Latouche-Ramaswami): quadratically convergent
    // computation of Neuts' G matrix, after which R = A0 (-A1 - A0 G)^{-1}.
    // The diagonal structure of A0/A2 keeps the setup at O(n^2):
    //   B0 = (-A1)^{-1} A0  (column scaling), B2 = mu (-A1)^{-1}.
    Matrix neg_a1 = a1;
    neg_a1 *= -1.0;
    const Matrix inv_neg_a1 = numerics::inverse(neg_a1);
    Matrix b0 = inv_neg_a1;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) b0(i, j) *= arrival_rates[j];
    Matrix b2 = inv_neg_a1;
    b2 *= service_rate;

    Matrix g = b2;
    const std::vector<double> ones(n, 1.0);

    // Warm start: natural functional iteration G <- B2 + B0 G^2 from a
    // neighboring sweep point's G. Linearly convergent — useless cold, but a
    // near-fixed-point guess needs only a handful of O(n^3) multiplies,
    // against the log-reduction's ~30 LU solves. Budget-capped; on failure
    // the cold reduction below runs as if no guess was given.
    bool warm_done = false;
    if (opts.initial_g != nullptr && opts.initial_g->rows() == n &&
        opts.initial_g->cols() == n) {
        Matrix gw = *opts.initial_g;
        const int warm_budget = 64;
        for (int it = 0; it < warm_budget; ++it) {
            Matrix next = b2 + b0 * (gw * gw);
            const double delta = (next - gw).max_abs();
            gw = std::move(next);
            ++res.iterations;
            if (delta < opts.tol) {
                const std::vector<double> rowsum = gw.apply(ones);
                double defect = 0.0;
                for (double r : rowsum) defect = std::max(defect, std::abs(1.0 - r));
                res.residual = defect;
                warm_done = true;
                break;
            }
        }
        if (warm_done) {
            g = std::move(gw);
            res.converged = true;
            res.warm_started = true;
            if (obs::enabled()) obs::registry().add_counter("qbd.warm_starts");
        } else if (obs::enabled()) {
            obs::registry().add_counter("qbd.warm_rejected");
        }
    }

    Matrix h = b0, l = b2, t = b0;
    for (; !warm_done && res.iterations < max_iter; ++res.iterations) {
        if (deadline.expired()) {
            res.budget_exhausted = true;
            break;
        }
        // U = HL + LH; H' = (I-U)^{-1} H^2; L' = (I-U)^{-1} L^2;
        // G += T L'; T *= H'.
        Matrix u = h * l + l * h;
        Matrix i_minus_u = Matrix::identity(n) - u;
        const numerics::LuDecomposition lu(std::move(i_minus_u));
        const Matrix h2 = h * h;
        const Matrix l2 = l * l;
        h = lu.solve(h2);
        l = lu.solve(l2);
        g += t * l;
        t = t * h;
        // G is (sub)stochastic at the fixed point; stop when its row sums
        // stabilize at their limit or the correction term T has vanished.
        const std::vector<double> rowsum = g.apply(ones);
        double defect = 0.0;
        for (double r : rowsum) defect = std::max(defect, std::abs(1.0 - r));
        res.residual = std::min(defect, t.max_abs());
        if (t.max_abs() < opts.tol || defect < opts.tol) {
            ++res.iterations;
            res.converged = true;
            break;
        }
    }
    // A tightened iteration cap that expired is budget exhaustion, not the
    // solver's own limit.
    if (!res.converged && max_iter < opts.max_iter) res.budget_exhausted = true;

    // R = A0 (-A1 - A0 G)^{-1}; A0 diagonal => row scaling of the inverse.
    Matrix w = neg_a1;
    for (std::size_t i = 0; i < n; ++i) {
        const double li = arrival_rates[i];
        if (li == 0.0) continue;  // haplint: allow(float-equality) exact zero = level has no arrivals, by construction
        for (std::size_t j = 0; j < n; ++j) w(i, j) -= li * g(i, j);
    }
    const Matrix w_inv = numerics::inverse(w);
    res.r = w_inv;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) res.r(i, j) *= arrival_rates[i];
    res.g = std::move(g);

    res.spectral_radius = spectral_radius(res.r);  // diagnostic only
    if (!res.stable) {
        record(res);
        return res;
    }

    // Boundary: pi0 (B00 + R A2) = 0 with B00 = Q - diag(arrivals);
    // normalization pi0 (I - R)^{-1} 1 = 1.
    Matrix b = phase_generator;
    for (std::size_t i = 0; i < n; ++i) b(i, i) -= arrival_rates[i];
    b += res.r * a2;

    const Matrix inv_i_minus_r = numerics::inverse(Matrix::identity(n) - res.r);
    const std::vector<double> norm_row = inv_i_minus_r.apply(ones);  // (I-R)^{-1} 1

    Matrix sys = b.transposed();
    for (std::size_t j = 0; j < n; ++j) sys(n - 1, j) = norm_row[j];
    std::vector<double> rhs(n, 0.0);
    rhs[n - 1] = 1.0;
    res.pi0 = numerics::solve(sys, rhs);

    // Phase marginal phi = pi0 (I - R)^{-1}; mean rate = phi . arrival_rates.
    const std::vector<double> phi = inv_i_minus_r.apply_left(res.pi0);
    res.mean_rate =
        std::inner_product(phi.begin(), phi.end(), arrival_rates.begin(), 0.0);

    // E[level] = pi0 R (I-R)^{-2} 1.
    const Matrix inv2 = inv_i_minus_r * inv_i_minus_r;
    const std::vector<double> tail = (res.r * inv2).apply(ones);
    res.mean_level =
        std::inner_product(res.pi0.begin(), res.pi0.end(), tail.begin(), 0.0);

    double p_empty = std::accumulate(res.pi0.begin(), res.pi0.end(), 0.0);
    res.utilization = 1.0 - p_empty;
    res.mean_delay = res.mean_rate > 0.0 ? res.mean_level / res.mean_rate : 0.0;
    // A stable QBD must hand back a usable law: boundary mass in [0,1] per
    // phase, finite moments. Matrix-geometric breakdown surfaces here.
    for (double p : res.pi0) HAP_CHECK_PROB(p);
    HAP_CHECK_PROB(res.utilization);
    HAP_CHECK_FINITE(res.mean_level);
    HAP_CHECK_FINITE(res.mean_delay);
    HAP_PRECOND(res.mean_level >= 0.0);
    record(res);
    return res;
}

}  // namespace hap::markov
