#include "markov/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace hap::markov {

Ctmc::Ctmc(std::size_t num_states) : n_(num_states) {
    if (num_states == 0) throw std::invalid_argument("Ctmc: zero states");
    if (num_states > UINT32_MAX) throw std::invalid_argument("Ctmc: too many states");
}

void Ctmc::add_transition(std::size_t from, std::size_t to, double rate) {
    if (finalized_) throw std::logic_error("Ctmc: add_transition after finalize");
    if (from >= n_ || to >= n_) throw std::out_of_range("Ctmc: state out of range");
    if (from == to) throw std::invalid_argument("Ctmc: self-loop");
    HAP_CHECK_FINITE(rate);  // a NaN rate passes every comparison below
    if (rate < 0.0) throw std::invalid_argument("Ctmc: negative rate");
    if (rate == 0.0) return;
    edges_.push_back(Transition{static_cast<std::uint32_t>(from),
                                static_cast<std::uint32_t>(to), rate});
}

void Ctmc::finalize() {
    if (finalized_) return;
    exit_rates_.assign(n_, 0.0);
    std::vector<std::size_t> in_counts(n_, 0);
    for (const Transition& e : edges_) {
        exit_rates_[e.from] += e.rate;
        ++in_counts[e.to];
    }
    in_offsets_.assign(n_ + 1, 0);
    for (std::size_t s = 0; s < n_; ++s) in_offsets_[s + 1] = in_offsets_[s] + in_counts[s];
    in_from_.resize(edges_.size());
    in_rate_.resize(edges_.size());
    std::vector<std::size_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
    for (const Transition& e : edges_) {
        const std::size_t pos = cursor[e.to]++;
        in_from_[pos] = e.from;
        in_rate_[pos] = e.rate;
    }
    finalized_ = true;
}

Ctmc::InEdges Ctmc::in_edges(std::size_t s) const {
    if (!finalized_) throw std::logic_error("Ctmc: not finalized");
    const std::size_t begin = in_offsets_.at(s);
    const std::size_t end = in_offsets_.at(s + 1);
    return InEdges{in_from_.data() + begin, in_rate_.data() + begin, end - begin};
}

namespace {

void normalize(std::vector<double>& pi) {
    double total = 0.0;
    for (double v : pi) total += v;
    if (total <= 0.0) return;
    const double inv = 1.0 / total;
    for (double& v : pi) v *= inv;
}

// Converged steady-state output must be a probability vector; a solver that
// diverged to NaN or negative mass fails here, not in the caller's tables.
void check_distribution(const std::vector<double>& pi) {
    for (double p : pi) HAP_CHECK_PROB(p);
}

void record_solve(const char* solver, const SolveResult& res, std::size_t n,
                  obs::ScopedTimer& timer) {
    if (!obs::enabled()) return;
    obs::SolverTelemetry t;
    t.solver = solver;
    t.iterations = static_cast<std::uint64_t>(res.iterations);
    t.residual = res.residual;
    t.truncation = n;
    t.wall_time_s = timer.stop();
    t.converged = res.converged;
    obs::registry().record_solver(std::move(t));
}

double max_relative_change(const std::vector<double>& a, const std::vector<double>& b) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        // States with negligible mass are compared absolutely, not
        // relatively, so the stopping rule is not hostage to 1e-100 states.
        const double scale = std::max(b[i], 1e-14);
        worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
    }
    return worst;
}

}  // namespace

SolveResult solve_steady_state(const Ctmc& chain, const SolveOptions& opts) {
    if (!chain.finalized()) throw std::logic_error("solve_steady_state: finalize first");
    obs::ScopedTimer timer("ctmc.gs_s");
    const std::size_t n = chain.num_states();
    SolveResult res;
    res.pi.assign(n, 1.0 / static_cast<double>(n));
    std::vector<double> prev(n);

    for (std::size_t iter = 1; iter <= opts.max_iter; ++iter) {
        const bool check = (iter % opts.check_every) == 0;
        if (check) prev = res.pi;
        for (std::size_t s = 0; s < n; ++s) {
            const double out = chain.exit_rate(s);
            if (out <= 0.0) continue;  // absorbing (shouldn't occur for HAP lattices)
            const Ctmc::InEdges in = chain.in_edges(s);
            double inflow = 0.0;
            for (std::size_t k = 0; k < in.count; ++k)
                inflow += res.pi[in.from[k]] * in.rate[k];
            res.pi[s] = inflow / out;
        }
        normalize(res.pi);
        if (check) {
            res.residual = max_relative_change(res.pi, prev);
            res.iterations = iter;
            if (res.residual < opts.tol) {
                res.converged = true;
                check_distribution(res.pi);
                record_solve("ctmc.gs", res, n, timer);
                return res;
            }
        }
    }
    res.iterations = opts.max_iter;
    record_solve("ctmc.gs", res, n, timer);
    return res;
}

SolveResult solve_steady_state_power(const Ctmc& chain, const SolveOptions& opts) {
    if (!chain.finalized()) throw std::logic_error("solve_steady_state_power: finalize first");
    obs::ScopedTimer timer("ctmc.power_s");
    const std::size_t n = chain.num_states();
    double lambda = 0.0;
    for (std::size_t s = 0; s < n; ++s) lambda = std::max(lambda, chain.exit_rate(s));
    lambda *= 1.02;  // strict uniformization constant avoids periodicity
    if (lambda <= 0.0) throw std::invalid_argument("solve_steady_state_power: empty chain");

    SolveResult res;
    res.pi.assign(n, 1.0 / static_cast<double>(n));
    std::vector<double> next(n);
    std::vector<double> prev(n);

    for (std::size_t iter = 1; iter <= opts.max_iter; ++iter) {
        const bool check = (iter % opts.check_every) == 0;
        if (check) prev = res.pi;
        // next = pi * (I + Q / lambda)
        for (std::size_t s = 0; s < n; ++s)
            next[s] = res.pi[s] * (1.0 - chain.exit_rate(s) / lambda);
        for (const Transition& e : chain.edges())
            next[e.to] += res.pi[e.from] * (e.rate / lambda);
        res.pi.swap(next);
        normalize(res.pi);
        if (check) {
            res.residual = max_relative_change(res.pi, prev);
            res.iterations = iter;
            if (res.residual < opts.tol) {
                res.converged = true;
                check_distribution(res.pi);
                record_solve("ctmc.power", res, n, timer);
                return res;
            }
        }
    }
    res.iterations = opts.max_iter;
    record_solve("ctmc.power", res, n, timer);
    return res;
}

}  // namespace hap::markov
