#include "markov/ctmc.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/contracts.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "parallel/parallel_for.hpp"

namespace hap::markov {

Ctmc::Ctmc(std::size_t num_states) : n_(num_states) {
    if (num_states == 0) throw std::invalid_argument("Ctmc: zero states");
    if (num_states > UINT32_MAX)
        throw std::invalid_argument("Ctmc: too many states for the 32-bit index envelope");
    builder().begin(n_, n_);
    exit_rates_.assign(n_, 0.0);
}

Ctmc::Ctmc(std::size_t num_states, CsrBuilder& builder_arena)
    : n_(num_states), shared_(&builder_arena) {
    if (num_states == 0) throw std::invalid_argument("Ctmc: zero states");
    if (num_states > UINT32_MAX)
        throw std::invalid_argument("Ctmc: too many states for the 32-bit index envelope");
    builder().begin(n_, n_);
    exit_rates_.assign(n_, 0.0);
}

void Ctmc::add_transition(std::size_t from, std::size_t to, double rate) {
    if (finalized_) throw std::logic_error("Ctmc: add_transition after finalize");
    if (from >= n_ || to >= n_) throw std::out_of_range("Ctmc: state out of range");
    if (from == to) throw std::invalid_argument("Ctmc: self-loop");
    HAP_CHECK_FINITE(rate);  // a NaN rate passes every comparison below
    if (rate < 0.0) throw std::invalid_argument("Ctmc: negative rate");
    if (rate == 0.0) return;  // haplint: allow(float-equality) exact zero = edge absent, by construction
    builder().add(from, to, rate);
    // Exit rates accumulate in insertion order (the order callers add
    // transitions), independent of how build() later merges duplicates.
    exit_rates_[from] += rate;
}

void Ctmc::set_color_hint(std::vector<std::uint32_t> color_of) {
    if (finalized_) throw std::logic_error("Ctmc: set_color_hint after finalize");
    if (color_of.size() != n_)
        throw std::invalid_argument("Ctmc: color hint size mismatch");
    color_hint_ = std::move(color_of);
    has_hint_ = true;
}

void Ctmc::finalize() {
    if (finalized_) return;
    CsrBuilder& b = builder();
    b.build(out_);
    // The transpose's rows are each state's in-edges in ascending source
    // order: Gauss-Seidel then reads pi[from[k]] in ascending address order,
    // turning the inner product into mostly-sequential loads.
    b.transpose(out_, in_);
    if (has_hint_) {
        // A bad hint is a caller bug — validate now (throws), not at the
        // first parallel solve.
        coloring_ = color_from_hint(out_, std::move(color_hint_));
        has_hint_ = false;
    }
    finalized_ = true;
}

std::size_t Ctmc::num_transitions() const noexcept {
    if (finalized_) return out_.nnz();
    return shared_ != nullptr ? shared_->pending() : own_builder_.pending();
}

Ctmc::InEdges Ctmc::in_edges(std::size_t s) const {
    if (!finalized_) throw std::logic_error("Ctmc: not finalized");
    if (s >= n_) throw std::out_of_range("Ctmc: state out of range");
    const Csr::Row r = in_.row(s);
    return InEdges{r.idx, r.val, r.count};
}

Ctmc::OutEdges Ctmc::out_edges(std::size_t s) const {
    if (!finalized_) throw std::logic_error("Ctmc: not finalized");
    if (s >= n_) throw std::out_of_range("Ctmc: state out of range");
    const Csr::Row r = out_.row(s);
    return OutEdges{r.idx, r.val, r.count};
}

const Csr& Ctmc::out_matrix() const {
    if (!finalized_) throw std::logic_error("Ctmc: not finalized");
    return out_;
}

const Csr& Ctmc::in_matrix() const {
    if (!finalized_) throw std::logic_error("Ctmc: not finalized");
    return in_;
}

const Coloring& Ctmc::coloring() const {
    if (!finalized_) throw std::logic_error("Ctmc: not finalized");
    if (coloring_.empty()) coloring_ = color_greedy(out_, in_);
    return coloring_;
}

namespace {

// Returns false when the iterate's total mass is non-finite or non-positive:
// a diverged iterate must abort the solve as non-converged rather than be
// left stale (a stale vector can pass the relative-change check and report a
// garbage distribution as "converged").
[[nodiscard]] bool normalize(std::vector<double>& pi) {
    double total = 0.0;
    for (double v : pi) total += v;
    if (!std::isfinite(total) || total <= 0.0) return false;
    const double inv = 1.0 / total;
    for (double& v : pi) v *= inv;
    return true;
}

// Seed the iterate from the caller's warm-start guess when it is a usable
// distribution, else uniform. A wrong-sized guess is a caller bug (throws);
// a degenerate one (non-finite entries, negative mass, zero total) falls
// back to the uniform start so continuation can never poison a solve.
bool seed_iterate(std::vector<double>& pi, std::size_t n, const SolveOptions& opts) {
    if (opts.initial_guess != nullptr) {
        const std::vector<double>& guess = *opts.initial_guess;
        if (guess.size() != n)
            throw std::invalid_argument("solve_steady_state: initial_guess size mismatch");
        bool usable = true;
        for (double v : guess) {
            if (!std::isfinite(v) || v < 0.0) {
                usable = false;
                break;
            }
        }
        if (usable) {
            pi = guess;
            if (normalize(pi)) {
                if (obs::enabled()) obs::registry().add_counter("ctmc.warm_starts");
                return true;
            }
        }
        if (obs::enabled()) obs::registry().add_counter("ctmc.warm_rejected");
    }
    pi.assign(n, 1.0 / static_cast<double>(n));
    return false;
}

// Sweep-kernel bookkeeping threaded through the telemetry exits: start of
// the iteration loop (for sweep_time_s / states_per_sec) plus the
// deterministic parallelism facts (color count, thread knob).
struct KernelStats {
    std::chrono::steady_clock::time_point start{};
    std::uint32_t colors = 0;
    std::uint32_t threads = 0;
};

void record_solve(const char* solver, const SolveResult& res, std::size_t n,
                  obs::ScopedTimer& timer, const KernelStats* kernel = nullptr);

// The degenerate-mass exit shared by both solvers: mark non-converged,
// surface an infinite residual, and leave a telemetry trail.
void abort_degenerate(const char* solver, SolveResult& res, std::size_t iter,
                      std::size_t n, obs::ScopedTimer& timer,
                      const KernelStats* kernel) {
    res.iterations = iter;
    res.residual = std::numeric_limits<double>::infinity();
    res.converged = false;
    if (obs::enabled()) obs::registry().add_counter("ctmc.degenerate_mass");
    record_solve(solver, res, n, timer, kernel);
}

// The contraction ratio of two consecutive difference vectors,
// r = <d_cur, d_prev> / <d_prev, d_prev> (Lyusternik's estimate). Returns a
// quiet NaN when the denominator degenerates.
double contraction_ratio(const std::vector<double>& a, const std::vector<double>& b,
                         const std::vector<double>& c) {
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d1 = b[i] - a[i];
        const double d2 = c[i] - b[i];
        num += d2 * d1;
        den += d1 * d1;
    }
    return den > 0.0 ? num / den : std::numeric_limits<double>::quiet_NaN();
}

// Aitken-style vector extrapolation from four consecutive checked iterates
// (h0, h1, h2, x), written over x when accepted. A single contraction ratio
// r = <d2, d1> / <d1, d1> is estimated from consecutive difference vectors
// (Lyusternik's method); when the error is dominated by one geometric mode —
// the nearly-decomposable HAP regime — jumping x + d * r / (1 - r) lands
// near the fixed point. The jump's gain r / (1 - r) grows without bound as
// r -> 1, so a noisy estimate overshoots catastrophically: the extrapolation
// therefore requires the ratio estimated over (h0, h1, h2) and the one over
// (h1, h2, x) to AGREE to within a tenth of the remaining contraction —
// evidence the iteration actually is in its asymptotic single-mode regime,
// which is the only regime where the formula is valid. Componentwise Aitken
// is deliberately avoided: with several slow modes its per-entry
// denominators misfire and destabilize the Gauss-Seidel sweep. Rejected —
// leaving x untouched — when either ratio is not a clean contraction
// (outside (0, 0.995)), the two disagree, the step norm has shrunk to the
// rounding floor (the gain would only amplify noise, stalling the residual
// just above tol forever), any extrapolated entry is non-finite or
// meaningfully negative, or the total mass degenerates; tiny negative
// undershoots are clamped to zero.
bool aitken_extrapolate(const std::vector<double>& h0, const std::vector<double>& h1,
                        const std::vector<double>& h2, std::vector<double>& x,
                        std::vector<double>& scratch) {
    const std::size_t n = x.size();
    double step2 = 0.0;
    double xnorm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = x[i] - h2[i];
        step2 += d * d;
        xnorm2 += x[i] * x[i];
    }
    if (step2 <= 1e-24 * xnorm2) return false;
    const double r_prev = contraction_ratio(h0, h1, h2);
    const double r = contraction_ratio(h1, h2, x);
    if (!std::isfinite(r_prev) || r_prev <= 0.0 || r_prev >= 0.995) return false;
    if (!std::isfinite(r) || r <= 0.0 || r >= 0.995) return false;
    if (std::abs(r - r_prev) > 0.1 * (1.0 - r)) return false;
    const double gain = r / (1.0 - r);
    scratch.resize(n);
    double positive = 0.0;
    double negative = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double v = x[i] + (x[i] - h2[i]) * gain;
        if (!std::isfinite(v)) return false;
        if (v >= 0.0)
            positive += v;
        else
            negative -= v;
        scratch[i] = v;
    }
    // "Leaves the simplex": reject when the negative overshoot is more than a
    // rounding-level fraction of the mass, or the mass itself degenerated.
    if (!(positive > 0.0) || negative > 1e-10 * positive) return false;
    for (double& v : scratch) v = std::max(v, 0.0);
    x.swap(scratch);
    return normalize(x);
}

// Converged steady-state output must be a probability vector; a solver that
// diverged to NaN or negative mass fails here, not in the caller's tables.
void check_distribution(const std::vector<double>& pi) {
    for (double p : pi) HAP_CHECK_PROB(p);
}

void record_solve(const char* solver, const SolveResult& res, std::size_t n,
                  obs::ScopedTimer& timer, const KernelStats* kernel) {
    if (!obs::enabled()) return;
    obs::SolverTelemetry t;
    t.solver = solver;
    t.iterations = static_cast<std::uint64_t>(res.iterations);
    t.residual = res.residual;
    t.truncation = n;
    t.wall_time_s = timer.stop();
    t.converged = res.converged;
    if (kernel != nullptr) {
        const std::chrono::duration<double> loop =
            std::chrono::steady_clock::now() - kernel->start;
        t.sweep_time_s = loop.count();
        if (t.sweep_time_s > 0.0 && res.iterations > 0)
            t.states_per_sec = static_cast<double>(res.iterations) *
                               static_cast<double>(n) / t.sweep_time_s;
        t.colors = kernel->colors;
        t.threads = kernel->threads;
    }
    obs::registry().record_solver(std::move(t));
}

// The state-budget refusal shared by both solvers: too many states to even
// allocate under the budget, so hand back a uniform non-converged iterate
// flagged budget_exhausted.
SolveResult refuse_states(const char* solver, std::size_t n, obs::ScopedTimer& timer) {
    SolveResult res;
    res.pi.assign(n, 1.0 / static_cast<double>(n));
    res.residual = std::numeric_limits<double>::infinity();
    res.budget_exhausted = true;
    if (obs::enabled()) obs::registry().add_counter("ctmc.budget_exhausted");
    record_solve(solver, res, n, timer);
    return res;
}

double max_relative_change(const std::vector<double>& a, const std::vector<double>& b) {
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        // States with negligible mass are compared absolutely, not
        // relatively, so the stopping rule is not hostage to 1e-100 states.
        const double scale = std::max(b[i], 1e-14);
        worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
    }
    return worst;
}

// The effective worker count for a solve: opts.threads, with 0 deferring to
// the HAP_BENCH_THREADS / hardware-concurrency policy.
std::size_t resolve_threads(const SolveOptions& opts) {
    return opts.threads == 0 ? parallel::env_threads() : opts.threads;
}

}  // namespace

SolveResult solve_steady_state(const Ctmc& chain, const SolveOptions& opts) {
    if (!chain.finalized()) throw std::logic_error("solve_steady_state: finalize first");
    obs::ScopedTimer timer("ctmc.gs_s");
    const std::size_t n = chain.num_states();
    if (opts.budget.states_exceeded(n)) return refuse_states("ctmc.gs", n, timer);
    const std::size_t max_iter = opts.budget.cap_iterations(opts.max_iter);
    const core::WallDeadline deadline(opts.budget.wall_ms);
    const std::size_t threads = resolve_threads(opts);
    // kAuto picks the natural (historical, bit-identical) order for serial
    // solves and the colored order as soon as parallelism is requested;
    // kColored is the thread-invariance contract — one fixed colored order
    // whose result does not depend on the thread count at all.
    const bool colored = opts.coloring == ColoringMode::kColored ||
                         (opts.coloring == ColoringMode::kAuto && threads > 1);
    const Coloring* coloring = colored ? &chain.coloring() : nullptr;
    const Csr& in = chain.in_matrix();
    const double* exit_rates = chain.exit_rates().data();

    SolveResult res;
    res.warm_started = seed_iterate(res.pi, n, opts);
    // Aitken history (three previous checked iterates) plus a scratch vector;
    // allocated lazily so the plain path never copies the full iterate — the
    // residual is folded into the check sweep itself.
    std::vector<double> h0, h1, h2, scratch;
    std::size_t hist = 0;
    bool accel_on = opts.accelerate;
    double prev_check = std::numeric_limits<double>::infinity();
    std::size_t worse_checks = 0;
    double best_residual = std::numeric_limits<double>::infinity();
    std::size_t checks_since_best = 0;
    KernelStats kernel;
    kernel.colors = colored ? coloring->num_colors : 0;
    kernel.threads = static_cast<std::uint32_t>(std::min<std::size_t>(threads, UINT32_MAX));
    kernel.start = std::chrono::steady_clock::now();

    for (std::size_t iter = 1; iter <= max_iter; ++iter) {
        // The last budgeted iteration is a forced check so the reported
        // residual is always fresh, never stale from a skipped window.
        const bool check = (iter % opts.check_every) == 0 || iter == max_iter;
        const double worst =
            colored ? gs_sweep_colored(in, exit_rates, *coloring, threads,
                                       res.pi.data(), check)
                    : gs_sweep_natural(in, exit_rates, res.pi.data(), check);
        if (!normalize(res.pi)) {
            abort_degenerate("ctmc.gs", res, iter, n, timer, &kernel);
            return res;
        }
        if (check) {
            res.residual = worst;
            res.iterations = iter;
            if (res.residual < opts.tol) {
                res.converged = true;
                check_distribution(res.pi);
                record_solve("ctmc.gs", res, n, timer, &kernel);
                return res;
            }
            if (deadline.expired()) break;  // wall backstop; flagged below
            // Fuses: extrapolation must keep the checked residual moving
            // down. Two consecutive non-improving checks after accepted
            // extrapolations mean the slow modes alias the scalar ratio
            // estimate (nearly decomposable spectra do this); and a long
            // stretch with no new best residual catches the subtler limit
            // cycle where clustered slow modes trade the error back and
            // forth — residual oscillating, improving often enough to dodge
            // the first fuse, converging never. Either way acceleration is
            // disabled and plain iteration finishes, so the accelerated
            // path can stall but never diverge.
            if (accel_on && res.accelerations > 0) {
                if (res.residual >= prev_check) {
                    if (++worse_checks >= 2) {
                        accel_on = false;
                        if (obs::enabled()) obs::registry().add_counter("ctmc.accel_fused");
                    }
                } else {
                    worse_checks = 0;
                }
                if (accel_on && ++checks_since_best >= 20) {
                    accel_on = false;
                    if (obs::enabled()) obs::registry().add_counter("ctmc.accel_fused");
                }
            }
            if (res.residual < 0.99 * best_residual) {
                best_residual = res.residual;
                checks_since_best = 0;
            }
            prev_check = res.residual;
            if (accel_on && iter < max_iter) {
                if (hist >= 3 && aitken_extrapolate(h0, h1, h2, res.pi, scratch)) {
                    ++res.accelerations;
                    hist = 0;  // extrapolated point starts a fresh sequence
                    if (obs::enabled()) obs::registry().add_counter("ctmc.accel_steps");
                } else {
                    h0.swap(h1);
                    h1.swap(h2);
                    h2 = res.pi;
                    if (hist < 3) ++hist;
                }
            }
        }
    }
    // Non-converged exit: the budget (tightened iteration cap or the wall
    // backstop) — rather than the solver's own max_iter — is reported as
    // budget exhaustion, a checkable boundary for the fallback chain.
    if (max_iter < opts.max_iter || deadline.expired()) {
        res.budget_exhausted = true;
        if (obs::enabled()) obs::registry().add_counter("ctmc.budget_exhausted");
    }
    record_solve("ctmc.gs", res, n, timer, &kernel);
    return res;
}

SolveResult solve_steady_state_power(const Ctmc& chain, const SolveOptions& opts) {
    if (!chain.finalized()) throw std::logic_error("solve_steady_state_power: finalize first");
    obs::ScopedTimer timer("ctmc.power_s");
    const std::size_t n = chain.num_states();
    if (opts.budget.states_exceeded(n)) return refuse_states("ctmc.power", n, timer);
    const std::size_t max_iter = opts.budget.cap_iterations(opts.max_iter);
    const core::WallDeadline deadline(opts.budget.wall_ms);
    const std::size_t threads = resolve_threads(opts);
    const Csr& in = chain.in_matrix();
    const double* exit_rates = chain.exit_rates().data();
    double lambda = 0.0;
    for (std::size_t s = 0; s < n; ++s) lambda = std::max(lambda, exit_rates[s]);
    lambda *= 1.02;  // strict uniformization constant avoids periodicity
    if (lambda <= 0.0) throw std::invalid_argument("solve_steady_state_power: empty chain");

    SolveResult res;
    res.warm_started = seed_iterate(res.pi, n, opts);
    std::vector<double> next(n);
    std::vector<double> h0, h1, h2, scratch;
    std::size_t hist = 0;
    bool accel_on = opts.accelerate;
    double prev_check = std::numeric_limits<double>::infinity();
    std::size_t worse_checks = 0;
    double best_residual = std::numeric_limits<double>::infinity();
    std::size_t checks_since_best = 0;
    KernelStats kernel;
    kernel.threads = static_cast<std::uint32_t>(std::min<std::size_t>(threads, UINT32_MAX));
    kernel.start = std::chrono::steady_clock::now();

    for (std::size_t iter = 1; iter <= max_iter; ++iter) {
        const bool check = (iter % opts.check_every) == 0 || iter == max_iter;
        // next = pi * (I + Q / lambda), gather form over the in-matrix: every
        // slot of next is written by exactly one chunk, so the step is
        // bit-identical at any thread count.
        uniformized_step(in, exit_rates, lambda, threads, res.pi.data(), next.data());
        res.pi.swap(next);
        if (!normalize(res.pi)) {
            abort_degenerate("ctmc.power", res, iter, n, timer, &kernel);
            return res;
        }
        if (check) {
            // After the swap, `next` still holds the previous normalized
            // iterate, so the convergence check needs no extra copy.
            res.residual = max_relative_change(res.pi, next);
            res.iterations = iter;
            if (res.residual < opts.tol) {
                res.converged = true;
                check_distribution(res.pi);
                record_solve("ctmc.power", res, n, timer, &kernel);
                return res;
            }
            if (deadline.expired()) break;  // wall backstop; flagged below
            // Same residual fuses as the Gauss-Seidel path (see above).
            if (accel_on && res.accelerations > 0) {
                if (res.residual >= prev_check) {
                    if (++worse_checks >= 2) {
                        accel_on = false;
                        if (obs::enabled()) obs::registry().add_counter("ctmc.accel_fused");
                    }
                } else {
                    worse_checks = 0;
                }
                if (accel_on && ++checks_since_best >= 20) {
                    accel_on = false;
                    if (obs::enabled()) obs::registry().add_counter("ctmc.accel_fused");
                }
            }
            if (res.residual < 0.99 * best_residual) {
                best_residual = res.residual;
                checks_since_best = 0;
            }
            prev_check = res.residual;
            if (accel_on && iter < max_iter) {
                if (hist >= 3 && aitken_extrapolate(h0, h1, h2, res.pi, scratch)) {
                    ++res.accelerations;
                    hist = 0;  // extrapolated point starts a fresh sequence
                    if (obs::enabled()) obs::registry().add_counter("ctmc.accel_steps");
                } else {
                    h0.swap(h1);
                    h1.swap(h2);
                    h2 = res.pi;
                    if (hist < 3) ++hist;
                }
            }
        }
    }
    // See the Gauss-Seidel exit: budget-driven stops are flagged.
    if (max_iter < opts.max_iter || deadline.expired()) {
        res.budget_exhausted = true;
        if (obs::enabled()) obs::registry().add_counter("ctmc.budget_exhausted");
    }
    record_solve("ctmc.power", res, n, timer, &kernel);
    return res;
}

}  // namespace hap::markov
