#include "markov/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/contracts.hpp"
#include "parallel/parallel_for.hpp"

namespace hap::markov {

namespace {

// Fixed chunk width for the parallel kernels. Chunk boundaries depend only on
// the state count — never on the thread count — so per-chunk partial results
// merge identically on 1 thread or 64. 2048 states keep a chunk's slice of
// pi plus its in-edges inside L2 while leaving enough chunks to balance load.
constexpr std::size_t kChunk = 2048;

}  // namespace

// --- CsrBuilder ----------------------------------------------------------

void CsrBuilder::begin(std::size_t rows, std::size_t cols) {
    if (rows > UINT32_MAX || cols > UINT32_MAX) {
        throw std::invalid_argument(
            "CsrBuilder: dimensions " + std::to_string(rows) + " x " +
            std::to_string(cols) +
            " exceed the 32-bit index envelope (max 4294967295 per side)");
    }
    rows_ = rows;
    cols_ = cols;
    coo_row_.clear();
    coo_col_.clear();
    coo_val_.clear();
    open_ = true;
}

void CsrBuilder::add(std::size_t row, std::size_t col, double value) {
    if (!open_) throw std::logic_error("CsrBuilder: add before begin (or after build)");
    if (row >= rows_ || col >= cols_)
        throw std::out_of_range("CsrBuilder: entry (" + std::to_string(row) + ", " +
                                std::to_string(col) + ") outside " +
                                std::to_string(rows_) + " x " + std::to_string(cols_));
    HAP_CHECK_FINITE(value);
    coo_row_.push_back(static_cast<std::uint32_t>(row));
    coo_col_.push_back(static_cast<std::uint32_t>(col));
    coo_val_.push_back(value);
}

void CsrBuilder::build(Csr& out) {
    if (!open_) throw std::logic_error("CsrBuilder: build before begin");
    const std::size_t raw = coo_row_.size();
    out.rows = rows_;
    out.cols = cols_;

    // Counting scatter by row: one pass to count, one to place, preserving
    // insertion order within each row.
    out.offsets.assign(rows_ + 1, 0);
    for (std::size_t k = 0; k < raw; ++k) ++out.offsets[coo_row_[k] + 1];
    for (std::size_t r = 0; r < rows_; ++r) out.offsets[r + 1] += out.offsets[r];
    counts_.assign(out.offsets.begin(), out.offsets.end() - 1);
    out.idx.resize(raw);
    out.val.resize(raw);
    for (std::size_t k = 0; k < raw; ++k) {
        const std::uint64_t pos = counts_[coo_row_[k]]++;
        out.idx[pos] = coo_col_[k];
        out.val[pos] = coo_val_[k];
    }

    // Stable per-row insertion sort by column (rows are a handful of entries
    // on the HAP lattices, so insertion sort beats anything with setup cost),
    // then merge duplicates left to right. Stability means equal columns stay
    // in insertion order, so the merged sum is accumulated in add() order —
    // a deterministic function of the build sequence.
    std::uint64_t w = 0;
    std::uint64_t row_begin = 0;
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::uint64_t row_end = out.offsets[r + 1];
        for (std::uint64_t i = row_begin + 1; i < row_end; ++i) {
            const std::uint32_t c = out.idx[i];
            const double v = out.val[i];
            std::uint64_t j = i;
            while (j > row_begin && out.idx[j - 1] > c) {
                out.idx[j] = out.idx[j - 1];
                out.val[j] = out.val[j - 1];
                --j;
            }
            out.idx[j] = c;
            out.val[j] = v;
        }
        std::uint64_t k = row_begin;
        while (k < row_end) {
            const std::uint32_t c = out.idx[k];
            double v = out.val[k];
            ++k;
            while (k < row_end && out.idx[k] == c) {
                v += out.val[k];
                ++k;
            }
            out.idx[w] = c;
            out.val[w] = v;
            ++w;
        }
        row_begin = row_end;
        out.offsets[r + 1] = w;
    }
    out.idx.resize(w);
    out.val.resize(w);
    open_ = false;
}

void CsrBuilder::transpose(const Csr& a, Csr& out) {
    out.rows = a.cols;
    out.cols = a.rows;
    out.offsets.assign(a.cols + 1, 0);
    for (const std::uint32_t c : a.idx) ++out.offsets[c + 1];
    for (std::size_t c = 0; c < a.cols; ++c) out.offsets[c + 1] += out.offsets[c];
    counts_.assign(out.offsets.begin(), out.offsets.end() - 1);
    out.idx.resize(a.nnz());
    out.val.resize(a.nnz());
    // Row-major scan of `a` places each transposed row's entries in ascending
    // source order — the layout the Gauss-Seidel inner product streams
    // through (mostly-sequential loads of pi).
    for (std::size_t r = 0; r < a.rows; ++r) {
        const std::uint64_t begin = a.offsets[r];
        const std::uint64_t end = a.offsets[r + 1];
        for (std::uint64_t k = begin; k < end; ++k) {
            const std::uint64_t pos = counts_[a.idx[k]]++;
            out.idx[pos] = static_cast<std::uint32_t>(r);
            out.val[pos] = a.val[k];
        }
    }
}

// --- Coloring ------------------------------------------------------------

namespace {

// Group states by color: offsets by counting sort, `order` filled in
// ascending state order (so each color's slice is ascending by construction).
void build_groups(Coloring& c, std::size_t n) {
    c.color_offsets.assign(c.num_colors + 1, 0);
    for (std::size_t s = 0; s < n; ++s) ++c.color_offsets[c.color_of[s] + 1];
    for (std::uint32_t k = 0; k < c.num_colors; ++k)
        c.color_offsets[k + 1] += c.color_offsets[k];
    c.order.resize(n);
    std::vector<std::uint64_t> cursor(c.color_offsets.begin(), c.color_offsets.end() - 1);
    for (std::size_t s = 0; s < n; ++s)
        c.order[cursor[c.color_of[s]]++] = static_cast<std::uint32_t>(s);
}

}  // namespace

Coloring color_greedy(const Csr& out, const Csr& in) {
    if (in.rows != out.rows || in.cols != out.cols || out.rows != out.cols)
        throw std::invalid_argument("color_greedy: out/in must be square transposes");
    const std::size_t n = out.rows;
    constexpr std::uint32_t kUncolored = UINT32_MAX;
    Coloring c;
    c.color_of.assign(n, kUncolored);
    // First-fit with stamping: taken[k] == s marks color k as used by a
    // neighbor of s, so no per-state clearing is needed.
    std::vector<std::size_t> taken;
    std::uint32_t max_color = 0;
    for (std::size_t s = 0; s < n; ++s) {
        for (const Csr* m : {&out, &in}) {
            const Csr::Row row = m->row(s);
            for (std::size_t k = 0; k < row.count; ++k) {
                const std::uint32_t t = row.idx[k];
                if (t == s) continue;  // diagonals never constrain a coloring
                const std::uint32_t tc = c.color_of[t];
                if (tc != kUncolored) {
                    if (tc >= taken.size()) taken.resize(tc + 1, SIZE_MAX);
                    taken[tc] = s;
                }
            }
        }
        std::uint32_t pick = 0;
        while (pick < taken.size() && taken[pick] == s) ++pick;
        c.color_of[s] = pick;
        if (pick > max_color) max_color = pick;
        if (pick >= taken.size()) taken.resize(pick + 1, SIZE_MAX);
    }
    c.num_colors = n > 0 ? max_color + 1 : 0;
    build_groups(c, n);
    return c;
}

Coloring color_from_hint(const Csr& out, std::vector<std::uint32_t> color_of) {
    const std::size_t n = out.rows;
    if (color_of.size() != n)
        throw std::invalid_argument("color_from_hint: hint size " +
                                    std::to_string(color_of.size()) + " != " +
                                    std::to_string(n) + " states");
    Coloring c;
    c.color_of = std::move(color_of);
    std::uint32_t max_color = 0;
    for (std::size_t s = 0; s < n; ++s) max_color = std::max(max_color, c.color_of[s]);
    if (n > 0 && max_color >= n)
        throw std::invalid_argument("color_from_hint: color id exceeds state count");
    c.num_colors = n > 0 ? max_color + 1 : 0;
    // Properness: an edge inside one color would let the parallel sweep read
    // a value its neighbor is concurrently writing.
    for (std::size_t s = 0; s < n; ++s) {
        const Csr::Row row = out.row(s);
        for (std::size_t k = 0; k < row.count; ++k) {
            const std::uint32_t t = row.idx[k];
            if (t != s && c.color_of[t] == c.color_of[s])
                throw std::invalid_argument(
                    "color_from_hint: edge (" + std::to_string(s) + " -> " +
                    std::to_string(t) + ") joins two states of color " +
                    std::to_string(c.color_of[s]));
        }
    }
    build_groups(c, n);
    // Contiguity: every color in [0, num_colors) must be populated, or the
    // sweep would walk empty groups (harmless) while reporting an inflated
    // color count in telemetry (misleading). Reject instead.
    for (std::uint32_t k = 0; k < c.num_colors; ++k) {
        if (c.color_offsets[k + 1] == c.color_offsets[k])
            throw std::invalid_argument("color_from_hint: color " + std::to_string(k) +
                                        " is unused (colors must be contiguous)");
    }
    return c;
}

// --- Sweep kernels -------------------------------------------------------

double gs_sweep_natural(const Csr& in, const double* exit_rates, double* pi,
                        bool check) noexcept {
    const std::size_t n = in.rows;
    const std::uint64_t* const offsets = in.offsets.data();
    const std::uint32_t* const from = in.idx.data();
    const double* const rate = in.val.data();
    double worst = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
        const double out = exit_rates[s];
        if (out <= 0.0) continue;  // absorbing (shouldn't occur for HAP lattices)
        const std::uint64_t begin = offsets[s];
        const std::uint64_t end = offsets[s + 1];
        double inflow = 0.0;
        for (std::uint64_t k = begin; k < end; ++k) inflow += pi[from[k]] * rate[k];
        const double next = inflow / out;
        if (check) {
            // States with negligible mass are compared absolutely, not
            // relatively, so the stopping rule is not hostage to 1e-100
            // states.
            const double scale = std::max(pi[s], 1e-14);
            worst = std::max(worst, std::abs(next - pi[s]) / scale);
        }
        pi[s] = next;
    }
    return worst;
}

namespace {

// The shared per-state update of the colored sweep over order[lo, hi).
// Returns the range's worst relative change (0 when !check).
double gs_update_range(const Csr& in, const double* exit_rates,
                       const std::uint32_t* order, std::size_t lo, std::size_t hi,
                       double* pi, bool check) noexcept {
    const std::uint64_t* const offsets = in.offsets.data();
    const std::uint32_t* const from = in.idx.data();
    const double* const rate = in.val.data();
    double worst = 0.0;
    for (std::size_t j = lo; j < hi; ++j) {
        const std::size_t s = order[j];
        const double out = exit_rates[s];
        if (out <= 0.0) continue;
        const std::uint64_t begin = offsets[s];
        const std::uint64_t end = offsets[s + 1];
        double inflow = 0.0;
        for (std::uint64_t k = begin; k < end; ++k) inflow += pi[from[k]] * rate[k];
        const double next = inflow / out;
        if (check) {
            const double scale = std::max(pi[s], 1e-14);
            worst = std::max(worst, std::abs(next - pi[s]) / scale);
        }
        pi[s] = next;
    }
    return worst;
}

}  // namespace

double gs_sweep_colored(const Csr& in, const double* exit_rates,
                        const Coloring& coloring, std::size_t threads, double* pi,
                        bool check) {
    if (coloring.empty() || coloring.order.size() != in.rows)
        throw std::invalid_argument("gs_sweep_colored: coloring does not match matrix");
    const std::uint32_t* const order = coloring.order.data();
    double worst = 0.0;
    for (std::uint32_t c = 0; c < coloring.num_colors; ++c) {
        const std::uint64_t begin = coloring.color_offsets[c];
        const std::size_t len =
            static_cast<std::size_t>(coloring.color_offsets[c + 1] - begin);
        if (len == 0) continue;
        const std::size_t chunks = (len + kChunk - 1) / kChunk;
        if (threads <= 1 || chunks == 1) {
            worst = std::max(
                worst, gs_update_range(in, exit_rates, order + begin, 0, len, pi, check));
        } else {
            // Per-chunk maxima merged in chunk order: max is exactly
            // associative and commutative on the nonnegative changes, so the
            // merged residual equals the serial one bit for bit.
            std::vector<double> chunk_worst(chunks, 0.0);
            parallel::parallel_for(threads, chunks, [&](std::size_t ci) {
                const std::size_t lo = ci * kChunk;
                const std::size_t hi = std::min(len, lo + kChunk);
                chunk_worst[ci] =
                    gs_update_range(in, exit_rates, order + begin, lo, hi, pi, check);
            });
            for (const double w : chunk_worst) worst = std::max(worst, w);
        }
    }
    return worst;
}

void uniformized_step(const Csr& in, const double* exit_rates, double lambda,
                      std::size_t threads, const double* pi, double* next) {
    HAP_CHECK_FINITE(lambda);
    HAP_PRECOND(lambda > 0.0);
    const std::size_t n = in.rows;
    const std::uint64_t* const offsets = in.offsets.data();
    const std::uint32_t* const from = in.idx.data();
    const double* const rate = in.val.data();
    const double inv_lambda = 1.0 / lambda;
    const auto run = [&](std::size_t lo, std::size_t hi) noexcept {
        for (std::size_t s = lo; s < hi; ++s) {
            const std::uint64_t begin = offsets[s];
            const std::uint64_t end = offsets[s + 1];
            double inflow = 0.0;
            for (std::uint64_t k = begin; k < end; ++k) inflow += pi[from[k]] * rate[k];
            next[s] = pi[s] * (1.0 - exit_rates[s] * inv_lambda) + inflow * inv_lambda;
        }
    };
    const std::size_t chunks = (n + kChunk - 1) / kChunk;
    if (threads <= 1 || chunks <= 1) {
        run(0, n);
    } else {
        parallel::parallel_for(threads, chunks, [&](std::size_t ci) {
            const std::size_t lo = ci * kChunk;
            run(lo, std::min(n, lo + kChunk));
        });
    }
}

}  // namespace hap::markov
