// Compressed-sparse matrix engine for the CTMC solvers.
//
// The design point is the paper's congestion regime (Fig. 14): truncated HAP
// lattices of 10^6-10^7 states with a handful of transitions each, swept
// thousands of times by Gauss-Seidel. Three pieces live here:
//
//   Csr          structure-of-arrays compressed-sparse-rows storage with
//                32-bit column indices and 64-bit row offsets — half the
//                index bandwidth of a (from, to, rate) edge list, and the
//                row layout the sweep kernels stream through.
//   CsrBuilder   one-pass deduplicating build from unordered (row, col, val)
//                triples, with all scratch arenas owned by the builder so a
//                caller that constructs chains in a loop (adaptive truncation
//                growth) reuses allocations instead of re-growing them.
//   Coloring +   a proper coloring of the transition structure's support
//   kernels      graph and the Gauss-Seidel sweep kernels built on it: the
//                states of one color have no edges among themselves, so each
//                color updates in parallel with no read/write overlap, and a
//                fixed color order plus fixed-size chunk reduction keeps the
//                result bit-identical at any thread count.
//
// Everything here is deterministic by construction: builds, colorings, and
// sweeps depend only on their inputs, never on thread schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hap::markov {

// Compressed sparse rows, structure-of-arrays. Entries of each row are in
// ascending column order with no duplicate columns (CsrBuilder merges them).
struct Csr {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::uint64_t> offsets;  // rows + 1 entries
    std::vector<std::uint32_t> idx;      // nnz column indices
    std::vector<double> val;             // nnz values

    std::size_t nnz() const noexcept { return idx.size(); }

    struct Row {
        const std::uint32_t* idx;
        const double* val;
        std::size_t count;
    };
    // Row r as raw spans; r must be < rows (unchecked hot-path accessor).
    Row row(std::size_t r) const noexcept {
        const std::uint64_t begin = offsets[r];
        const std::uint64_t end = offsets[r + 1];
        return Row{idx.data() + begin, val.data() + begin,
                   static_cast<std::size_t>(end - begin)};
    }
};

// One-pass deduplicating CSR builder. Usage:
//
//   CsrBuilder b;            // reusable: arenas persist across builds
//   b.begin(rows, cols);     // validates the 32-bit index envelope
//   b.add(r, c, v);          // any order; duplicates allowed
//   b.build(csr);            // counting-scatter + per-row sort + merge
//
// Duplicate (row, col) entries are summed in insertion order (the per-row
// sort is stable), so the merged value is a deterministic function of the
// add() sequence. begin() may be called again after build() to reuse the
// builder's arenas for the next matrix; one matrix is in flight at a time.
class CsrBuilder {
public:
    // Throws std::invalid_argument when rows or cols exceed the 32-bit index
    // envelope (UINT32_MAX) — oversized state spaces must fail loudly, never
    // truncate an index.
    void begin(std::size_t rows, std::size_t cols);

    // Record one entry; bounds-checked against the begin() dimensions
    // (std::out_of_range), value must be finite (std::invalid_argument).
    void add(std::size_t row, std::size_t col, double value);

    bool open() const noexcept { return open_; }
    std::size_t pending() const noexcept { return coo_row_.size(); }

    // Assemble into `out`, reusing out's storage when adequate, and close the
    // build. The builder keeps its arenas for the next begin().
    void build(Csr& out);

    // out = transpose(a): rows of `out` are columns of `a`, every transposed
    // row's entries in ascending column order (a's row-major scan order).
    // Uses this builder's counting scratch; independent of begin()/build()
    // state.
    void transpose(const Csr& a, Csr& out);

private:
    bool open_ = false;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::uint32_t> coo_row_;
    std::vector<std::uint32_t> coo_col_;
    std::vector<double> coo_val_;
    std::vector<std::uint64_t> counts_;  // per-row counters / scatter cursors
};

// A proper coloring of a sparse structure's undirected support graph:
// color_of[u] != color_of[v] for every off-diagonal entry (u, v) (diagonal
// entries are ignored — a CTMC has none, and a self-edge can never be
// properly colored). States are grouped by color in `order`, ascending
// within each color, so a sweep that walks colors in index order touches
// every state in a deterministic sequence.
struct Coloring {
    std::uint32_t num_colors = 0;
    std::vector<std::uint32_t> color_of;       // one entry per state
    std::vector<std::uint64_t> color_offsets;  // num_colors + 1
    std::vector<std::uint32_t> order;          // states grouped by color

    bool empty() const noexcept { return color_of.empty(); }
};

// Greedy first-fit coloring in ascending state order over the union of
// out-edges and in-edges. Deterministic; exact (2 colors) on bipartite
// structures only when the index order cooperates — lattice builders that
// know their parity should pass a red-black hint to color_from_hint instead.
Coloring color_greedy(const Csr& out, const Csr& in);

// Build a Coloring from caller-supplied per-state colors (e.g. red-black
// lattice parity). Validates size, contiguity of the color range, and
// properness against the out-edges; throws std::invalid_argument on any
// violation (a bad hint is a caller bug, not a fallback case).
Coloring color_from_hint(const Csr& out, std::vector<std::uint32_t> color_of);

// --- Sweep kernels -------------------------------------------------------
//
// Both Gauss-Seidel kernels update pi in place on the balance equations
// pi[s] = (sum_in pi[from] * rate) / exit[s], reading each state's in-edges
// (rows of `in`, which must be the transpose of the out-matrix) in ascending
// source order. States with exit[s] <= 0 (absorbing) are skipped. With
// `check` set, the return value is the worst relative change
// |next - prev| / max(prev, 1e-14) over the updated states; otherwise 0.0.

// Natural state order (0..n-1): the classic serial sweep, bit-identical to
// the pre-CSR edge-list solver.
double gs_sweep_natural(const Csr& in, const double* exit_rates, double* pi,
                        bool check) noexcept;

// Colored order: colors ascending, states ascending within each color, each
// color's states updated concurrently on up to `threads` workers in
// fixed-size chunks. Within a color no state reads another's fresh value
// (proper coloring), and the residual is reduced per chunk then merged in
// chunk order, so the result — iterate AND residual — is bit-identical for
// any thread count, including threads == 1.
double gs_sweep_colored(const Csr& in, const double* exit_rates,
                        const Coloring& coloring, std::size_t threads, double* pi,
                        bool check);

// One uniformized power step, next = pi * (I + Q / lambda), in gather form:
// next[s] = pi[s] * (1 - exit[s] / lambda) + sum_in pi[from] * rate / lambda.
// Rows are processed in fixed-size chunks on up to `threads` workers; every
// slot is written by exactly one chunk, so the product is bit-identical at
// any thread count.
void uniformized_step(const Csr& in, const double* exit_rates, double lambda,
                      std::size_t threads, const double* pi, double* next);

}  // namespace hap::markov
