// Sparse continuous-time Markov chains over enumerated state spaces, with the
// iterative steady-state solvers the paper's Solution 0/1 need: Gauss-Seidel
// sweeps on the balance equations and uniformized power iteration. State
// spaces of a few million states with a handful of transitions each are the
// design point (truncated HAP lattices).
#pragma once

#include <cstdint>
#include <vector>

#include "core/budget.hpp"

namespace hap::markov {

struct Transition {
    std::uint32_t from;
    std::uint32_t to;
    double rate;
};

// Build with add_transition, then finalize() once before solving.
class Ctmc {
public:
    explicit Ctmc(std::size_t num_states);

    void add_transition(std::size_t from, std::size_t to, double rate);
    void finalize();
    bool finalized() const noexcept { return finalized_; }

    std::size_t num_states() const noexcept { return n_; }
    std::size_t num_transitions() const noexcept { return edges_.size(); }
    double exit_rate(std::size_t s) const { return exit_rates_.at(s); }

    // In-edges of state s as [begin, end) into the CSC arrays.
    struct InEdges {
        const std::uint32_t* from;
        const double* rate;
        std::size_t count;
    };
    InEdges in_edges(std::size_t s) const;

    const std::vector<Transition>& edges() const noexcept { return edges_; }

private:
    std::size_t n_;
    bool finalized_ = false;
    std::vector<Transition> edges_;
    std::vector<double> exit_rates_;
    // CSC-like layout of incoming edges, used by Gauss-Seidel.
    std::vector<std::size_t> in_offsets_;
    std::vector<std::uint32_t> in_from_;
    std::vector<double> in_rate_;
};

struct SolveOptions {
    double tol = 1e-12;        // max relative change per sweep
    std::size_t max_iter = 200000;
    std::size_t check_every = 10;
    // Continuation support: start the iteration from this caller-owned vector
    // instead of the uniform distribution. Must have num_states() entries
    // (throws std::invalid_argument otherwise); a guess containing non-finite
    // or negative entries, or with non-positive total mass, is rejected and
    // the solver falls back to the uniform start. The caller's vector is
    // copied and renormalized, never mutated.
    const std::vector<double>* initial_guess = nullptr;
    // Aitken delta-squared extrapolation on the checked iterates. Guarded:
    // an extrapolated vector that leaves the probability simplex (negative
    // mass, non-finite entries) is discarded and plain iteration continues,
    // so acceleration can only change how fast the fixed point is reached,
    // never which fixed point.
    bool accelerate = true;
    // Resource budget (see core/budget.hpp). max_iterations tightens
    // max_iter; a chain larger than max_states is refused outright; wall_ms
    // is checked at check boundaries. Exhaustion returns a non-converged
    // result with budget_exhausted set instead of hanging.
    core::SolveBudget budget;
};

struct SolveResult {
    std::vector<double> pi;
    std::size_t iterations = 0;
    double residual = 0.0;  // last observed max relative change
    bool converged = false;
    // Diagnostics for the continuation telemetry: whether the caller's
    // initial guess was adopted, and how many Aitken extrapolations were
    // accepted along the way.
    bool warm_started = false;
    std::size_t accelerations = 0;
    // The SolveBudget (not the solver's own max_iter) stopped this solve:
    // converged is false and the iterate is the best available. Iteration
    // and state budgets trip deterministically; wall_ms does not.
    bool budget_exhausted = false;
};

// Gauss-Seidel on pi(s) = sum_in pi(s') rate(s'->s) / exit_rate(s), with
// periodic normalization. Matches the paper's iterative scheme for
// Solution 0/1 but converges substantially faster thanks to in-place sweeps.
SolveResult solve_steady_state(const Ctmc& chain, const SolveOptions& opts = {});

// Uniformized power iteration (Jacobi-style): pi <- pi P with
// P = I + Q / Lambda, Lambda > max exit rate. Slower but embarrassingly
// simple; retained as an independent cross-check of the Gauss-Seidel path.
SolveResult solve_steady_state_power(const Ctmc& chain, const SolveOptions& opts = {});

}  // namespace hap::markov
