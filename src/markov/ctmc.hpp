// Sparse continuous-time Markov chains over enumerated state spaces, with the
// iterative steady-state solvers the paper's Solution 0/1 need: Gauss-Seidel
// sweeps on the balance equations and uniformized power iteration. State
// spaces of a few million states with a handful of transitions each are the
// design point (truncated HAP lattices).
//
// Storage is the CSR engine of markov/sparse.hpp: transitions stream into a
// CsrBuilder (optionally a caller-shared one, so adaptive truncation growth
// reuses arenas across rebuilds) and finalize() assembles the out-matrix, its
// transpose (the in-matrix the Gauss-Seidel kernels sweep), and — when the
// builder of the chain knows its lattice parity — a red-black coloring that
// lets sweeps run on several threads with bit-identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "core/budget.hpp"
#include "core/contracts.hpp"
#include "markov/sparse.hpp"

namespace hap::markov {

// Build with add_transition, then finalize() once before solving.
class Ctmc {
public:
    explicit Ctmc(std::size_t num_states);
    // Same, but assembling through a caller-owned builder so repeated chain
    // constructions (adaptive box growth) reuse its arenas. The builder must
    // outlive finalize() and carries one chain at a time.
    Ctmc(std::size_t num_states, CsrBuilder& builder);

    void add_transition(std::size_t from, std::size_t to, double rate);

    // Optional per-state coloring hint (e.g. red-black lattice parity),
    // validated at finalize(): an improper or non-contiguous hint throws
    // std::invalid_argument. Without a hint, a greedy coloring is computed
    // lazily on the first coloring() call. Must precede finalize().
    void set_color_hint(std::vector<std::uint32_t> color_of);

    void finalize();
    bool finalized() const noexcept { return finalized_; }

    std::size_t num_states() const noexcept { return n_; }
    // Before finalize: transitions recorded so far. After: stored entries
    // (duplicate (from, to) pairs merged by summation).
    std::size_t num_transitions() const noexcept;

    // Hot-path accessor: contract-guarded, not bounds-checked — the solver
    // kernels index it millions of times per sweep.
    double exit_rate(std::size_t s) const {
        HAP_PRECOND(finalized_ && s < n_);
        return exit_rates_[s];
    }
    const std::vector<double>& exit_rates() const noexcept { return exit_rates_; }

    // In-edges of state s, ascending by source (one row of the in-matrix).
    struct InEdges {
        const std::uint32_t* from;
        const double* rate;
        std::size_t count;
    };
    InEdges in_edges(std::size_t s) const;

    // Out-edges of state s, ascending by destination (one row of the
    // out-matrix).
    struct OutEdges {
        const std::uint32_t* to;
        const double* rate;
        std::size_t count;
    };
    OutEdges out_edges(std::size_t s) const;

    // The assembled matrices (finalize() first): out rows are a state's
    // outgoing rates by destination; in = transpose(out), the layout the
    // Gauss-Seidel kernels stream.
    const Csr& out_matrix() const;
    const Csr& in_matrix() const;

    // The chain's proper coloring: the validated hint when one was supplied,
    // else a greedy coloring computed (and cached) on first use. finalize()
    // first.
    const Coloring& coloring() const;

private:
    CsrBuilder& builder() noexcept { return shared_ != nullptr ? *shared_ : own_builder_; }

    std::size_t n_;
    bool finalized_ = false;
    CsrBuilder own_builder_;
    CsrBuilder* shared_ = nullptr;
    bool has_hint_ = false;
    std::vector<std::uint32_t> color_hint_;
    std::vector<double> exit_rates_;
    Csr out_;
    Csr in_;
    mutable Coloring coloring_;  // lazily computed when no hint was given
};

// Sweep-order / parallelism policy for the Gauss-Seidel solver.
enum class ColoringMode {
    // Natural order when threads == 1 (bit-identical to the historical serial
    // solver, so goldens and bench baselines stay valid); colored when
    // threads > 1.
    kAuto,
    // Colored order even on one thread. This is the thread-invariance
    // contract: a kColored solve is bit-identical for ANY thread count.
    kColored,
    // Natural order always; threads only affect the power solver. For
    // pinning legacy numerics regardless of the threads knob.
    kNatural,
};

struct SolveOptions {
    double tol = 1e-12;        // max relative change per sweep
    std::size_t max_iter = 200000;
    std::size_t check_every = 10;
    // Continuation support: start the iteration from this caller-owned vector
    // instead of the uniform distribution. Must have num_states() entries
    // (throws std::invalid_argument otherwise); a guess containing non-finite
    // or negative entries, or with non-positive total mass, is rejected and
    // the solver falls back to the uniform start. The caller's vector is
    // copied and renormalized, never mutated.
    const std::vector<double>* initial_guess = nullptr;
    // Aitken delta-squared extrapolation on the checked iterates. Guarded:
    // an extrapolated vector that leaves the probability simplex (negative
    // mass, non-finite entries) is discarded and plain iteration continues,
    // so acceleration can only change how fast the fixed point is reached,
    // never which fixed point.
    bool accelerate = true;
    // Worker threads for the sweep kernels: 1 = serial (default), 0 = pick
    // from HAP_BENCH_THREADS / hardware concurrency. Changing the thread
    // count NEVER changes results: colored sweeps and the power step reduce
    // over fixed chunks, and the natural sweep is serial by definition.
    std::size_t threads = 1;
    ColoringMode coloring = ColoringMode::kAuto;
    // Resource budget (see core/budget.hpp). max_iterations tightens
    // max_iter; a chain larger than max_states is refused outright; wall_ms
    // is checked at check boundaries. Exhaustion returns a non-converged
    // result with budget_exhausted set instead of hanging.
    core::SolveBudget budget;
};

struct [[nodiscard]] SolveResult {
    std::vector<double> pi;
    std::size_t iterations = 0;
    double residual = 0.0;  // last observed max relative change
    bool converged = false;
    // Diagnostics for the continuation telemetry: whether the caller's
    // initial guess was adopted, and how many Aitken extrapolations were
    // accepted along the way.
    bool warm_started = false;
    std::size_t accelerations = 0;
    // The SolveBudget (not the solver's own max_iter) stopped this solve:
    // converged is false and the iterate is the best available. Iteration
    // and state budgets trip deterministically; wall_ms does not.
    bool budget_exhausted = false;
};

// Gauss-Seidel on pi(s) = sum_in pi(s') rate(s'->s) / exit_rate(s), with
// periodic normalization. Matches the paper's iterative scheme for
// Solution 0/1 but converges substantially faster thanks to in-place sweeps.
SolveResult solve_steady_state(const Ctmc& chain, const SolveOptions& opts = {});

// Uniformized power iteration (Jacobi-style): pi <- pi P with
// P = I + Q / Lambda, Lambda > max exit rate. Slower but embarrassingly
// simple; retained as an independent cross-check of the Gauss-Seidel path.
SolveResult solve_steady_state_power(const Ctmc& chain, const SolveOptions& opts = {});

}  // namespace hap::markov
