// Matrix-geometric (Neuts) solver for the MMPP/M/1 queue, viewed as a
// quasi-birth-death process: level = number in system, phase = modulating
// state. The paper cites Neuts' algorithmic approach [14, 15]; we implement
// it as "Solution 3", an exact alternative to the brute-force Solution 0 once
// the modulating chain is truncated — the level dimension is handled
// analytically through the geometric tail pi_k = pi_0 R^k.
#pragma once

#include <vector>

#include "core/budget.hpp"
#include "numerics/matrix.hpp"

namespace hap::markov {

struct QbdOptions {
    double tol = 1e-13;       // max-abs change in R per iteration
    int max_iter = 100000;
    // Resource budget (see core/budget.hpp): max_iterations tightens
    // max_iter, max_states bounds the phase count, wall_ms backstops the
    // reduction loop. Exhaustion is reported via QbdResult::budget_exhausted.
    core::SolveBudget budget;
    // Warm start: a G matrix from a neighboring sweep point (see
    // QbdResult::g). When provided and well-shaped, the solver runs the
    // natural functional iteration G <- B2 + B0 G^2 from this guess — a few
    // linear steps from a near-fixed-point start — and falls back to the
    // cold logarithmic reduction if that fails to converge. A wrong-shaped
    // guess is ignored (cold solve).
    const numerics::Matrix* initial_g = nullptr;
};

struct [[nodiscard]] QbdResult {
    numerics::Matrix r;             // Neuts' rate matrix
    numerics::Matrix g;             // Neuts' G matrix (feed back via initial_g)
    std::vector<double> pi0;        // boundary (level 0) distribution
    double mean_level = 0.0;        // E[number in system]
    double mean_rate = 0.0;         // stationary mean arrival rate
    double mean_delay = 0.0;        // E[time in system] via Little
    double utilization = 0.0;       // P(level > 0)
    double spectral_radius = 0.0;   // sp(R): stability requires < 1
    double residual = 0.0;          // final row-sum defect of G (see solver)
    int iterations = 0;
    bool stable = false;
    bool converged = false;  // reduction hit tol (false = iteration budget spent)
    bool warm_started = false;  // converged via functional iteration from initial_g
    // The SolveBudget stopped this solve (phase count over max_states, the
    // tightened iteration cap, or the wall backstop); converged is false.
    bool budget_exhausted = false;
};

// Solve the MMPP/M/1 queue. `phase_generator` is the modulating chain's
// generator Q (n x n), `arrival_rates` the per-phase Poisson rates, and
// `service_rate` the exponential server rate. Throws std::invalid_argument on
// malformed input; an unstable queue (rho >= 1) is reported via
// `stable == false` with the partial R matrix.
QbdResult solve_mmpp_m1(const numerics::Matrix& phase_generator,
                        const std::vector<double>& arrival_rates,
                        double service_rate, const QbdOptions& opts = {});

}  // namespace hap::markov
