#include "parallel/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <utility>

#include "core/thread_safety.hpp"

namespace hap::parallel {

namespace {

// The ONE structure pool workers mutate concurrently. Everything else in
// parallel_for is either per-worker or a std::atomic; keeping the shared
// mutable state in a single annotated sink lets clang -Wthread-safety prove
// the locking discipline instead of the comment asserting it.
struct ErrorSink {
    core::Mutex mutex;
    std::vector<JobError> errors HAP_GUARDED_BY(mutex);

    void push(std::size_t index, std::exception_ptr error) {
        const core::MutexLock lock(mutex);
        errors.push_back({index, std::move(error)});
    }

    // Called after the pool has joined; taking the lock anyway costs one
    // uncontended acquire and keeps the function provable.
    std::vector<JobError> take() {
        const core::MutexLock lock(mutex);
        return std::move(errors);
    }
};

}  // namespace

ParallelForError::ParallelForError(std::vector<JobError> errors)
    : std::runtime_error(describe(errors)), errors_(std::move(errors)) {}

std::string ParallelForError::describe(const std::vector<JobError>& errors) {
    std::string first = "unknown error";
    if (!errors.empty() && errors.front().error) {
        try {
            std::rethrow_exception(errors.front().error);
        } catch (const std::exception& e) {
            first = e.what();
        } catch (...) {
        }
    }
    std::string msg = "parallel_for: " + std::to_string(errors.size()) +
                      " job(s) failed; first (job " +
                      std::to_string(errors.empty() ? 0 : errors.front().index) +
                      "): " + first;
    return msg;
}

std::size_t env_threads() {
    if (const char* env = std::getenv("HAP_BENCH_THREADS")) {  // haplint: allow(env-after-spawn) phase-0: read at pool construction, before workers spawn
        const long v = std::atol(env);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (threads == 0) threads = env_threads();
    const std::size_t workers = std::min(threads, n);
    ErrorSink sink;
    if (workers <= 1) {
        // The serial path mirrors the pool exactly — every job runs even
        // after one throws — so failure sets are identical at any thread
        // count.
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                sink.push(i, std::current_exception());
            }
        }
    } else {
        std::atomic<std::size_t> next{0};
        const auto work = [&] {
            for (;;) {
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n) return;
                try {
                    fn(i);
                } catch (...) {
                    sink.push(i, std::current_exception());
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
        work();  // the calling thread is worker 0
        for (std::thread& t : pool) t.join();
    }
    std::vector<JobError> errors = sink.take();
    // Capture order is schedule-dependent; job-index order is not.
    std::sort(errors.begin(), errors.end(),
              [](const JobError& a, const JobError& b) { return a.index < b.index; });
    if (!errors.empty()) throw ParallelForError(std::move(errors));
}

}  // namespace hap::parallel
