// Bottom-layer deterministic work-sharing primitive.
//
// parallel_for(threads, n, fn) runs fn(i) for every i in [0, n) on up to
// `threads` workers (the calling thread participates) and blocks until all
// jobs finish. It is the ONLY place in the tree that spawns threads: the
// replication engine (experiment::ExperimentRunner) and the graph-colored
// Gauss-Seidel solver (markov) both drain their work through it, so the
// repo's determinism contract — results bit-identical at any thread count —
// has a single concurrency primitive to reason about. The primitive itself
// promises: every job runs exactly once, a throwing job never stops the
// others, and the collected failure set is ordered by job index
// (deterministic for any schedule).
//
// This module sits BELOW markov/core/experiment and depends on nothing but
// the standard library, so solvers can parallelize without inverting the
// dependency layering.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace hap::parallel {

// Worker count: HAP_BENCH_THREADS if set and positive, else the hardware
// concurrency (at least 1).
std::size_t env_threads();

// One failed job of a parallel_for: the job index and the exception it threw.
struct JobError {
    std::size_t index = 0;
    std::exception_ptr error;
};

// Thrown by parallel_for when jobs fail. EVERY failure is kept, ordered by
// job index (deterministic for any thread count); what() reports the count
// and the first failure's text. Derives from std::runtime_error so callers
// that only ever expected "the one exception" still catch it.
class ParallelForError : public std::runtime_error {
public:
    explicit ParallelForError(std::vector<JobError> errors);

    const std::vector<JobError>& errors() const noexcept { return errors_; }

private:
    static std::string describe(const std::vector<JobError>& errors);

    std::vector<JobError> errors_;
};

// Run fn(i) for every i in [0, n) on min(threads, n) workers; threads == 0
// picks env_threads(). Jobs are claimed from an atomic counter (work
// stealing), so the ASSIGNMENT of jobs to threads is schedule-dependent —
// callers that need determinism must make each job's EFFECT independent of
// which thread runs it (disjoint output slots, order-free reductions).
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace hap::parallel
