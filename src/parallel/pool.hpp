// Resident worker pool for long-lived services.
//
// parallel_for (the batch primitive) spawns workers per call and joins them
// before returning — the right shape for a sweep, the wrong one for a daemon
// that must keep threads alive across an unbounded stream of connections.
// Pool is the resident counterpart: a fixed set of workers draining a FIFO
// job queue until shutdown. Like parallel_for it lives in src/parallel/, the
// single sanctioned thread-spawning layer (tools/haplint enforces this), so
// the repo still has one place to reason about concurrency primitives.
//
// Scheduling is deliberately dumb (one mutex, one condition variable, FIFO):
// jobs here are whole client connections or batched solves, i.e. milliseconds
// to seconds of work, so queue overhead is irrelevant. Determinism is NOT
// promised at this layer — a service answers each query from a deterministic
// solve, but the interleaving of independent connections is inherently
// schedule-dependent (DESIGN.md §4j gives the per-query argument).
//
// A job that throws is contained: the exception is swallowed after invoking
// the pool's error hook (if any); the worker survives and takes the next job.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

namespace hap::parallel {

class Pool {
public:
    // Spawns `threads` workers (at least 1). `on_error` (optional) is invoked
    // from the worker with the exception a job escaped with; it must not
    // throw. No getenv here: sizing is phase-0 configuration owned by the
    // front end (see env_threads()).
    //
    // `max_queue` bounds the PENDING job queue (jobs submitted but not yet
    // started): a submit that would push the queue past the bound is refused
    // instead of growing it without limit — the backpressure signal an
    // overloaded service turns into an explicit shed frame. 0 = unbounded
    // (the pre-PR-10 behavior).
    explicit Pool(std::size_t threads,
                  std::function<void(std::exception_ptr)> on_error = nullptr,
                  std::size_t max_queue = 0);

    // Drains nothing: pending jobs that have not started are dropped; jobs
    // already running are joined. Callers that need every submitted job to
    // finish must track completion themselves (the service's connection
    // handlers do, via their own shutdown handshake).
    ~Pool();

    Pool(const Pool&) = delete;
    Pool& operator=(const Pool&) = delete;

    // Enqueue a job. Returns false (job not enqueued) after shutdown/drain
    // began or when the bounded queue is full.
    bool submit(std::function<void()> job);

    // Ask workers to stop after their current job, then join them. Pending
    // jobs that never started are dropped. Idempotent.
    void shutdown();

    // Graceful counterpart to shutdown(): refuse new submissions, run every
    // already-enqueued job to completion, then join the workers. In-flight
    // queries get their answers instead of vanishing with the queue
    // (Hapd::stop() uses this). Idempotent; safe to follow with shutdown().
    void drain();

    std::size_t threads() const noexcept;

    // Observability for the depth gauge: jobs waiting in the queue, and jobs
    // a worker is currently running. Snapshots under the pool lock —
    // coherent, but stale the instant it returns; use for metrics, not logic.
    std::size_t depth() const;
    std::size_t active() const;

private:
    struct Impl;
    Impl* impl_;  // pimpl: keeps <thread>/<condition_variable> out of the header
};

}  // namespace hap::parallel
