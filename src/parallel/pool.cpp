#include "parallel/pool.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hap::parallel {

// Plain std::mutex, not the annotated core::Mutex: the workers block on a
// condition variable, and neither std::unique_lock nor condition_variable
// carries thread-safety-analysis attributes in libstdc++, so annotating this
// file would only force blanket opt-outs. Nothing here is reachable without
// the lock; the structure is the textbook one-queue/one-cv pool.
struct Pool::Impl {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    std::size_t max_queue = 0;  // 0 = unbounded
    std::size_t running = 0;    // jobs currently inside job()
    bool stopping = false;      // drop pending jobs, stop after current
    bool draining = false;      // run pending jobs, then stop
    std::vector<std::thread> workers;
    std::function<void(std::exception_ptr)> on_error;

    void worker_loop() {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] { return stopping || draining || !queue.empty(); });
                if (stopping) return;  // pending jobs are dropped by contract
                if (queue.empty()) return;  // draining and nothing left
                job = std::move(queue.front());
                queue.pop_front();
                ++running;
            }
            try {
                job();
            } catch (...) {
                if (on_error) on_error(std::current_exception());
            }
            {
                const std::lock_guard<std::mutex> lock(mutex);
                --running;
            }
        }
    }
};

Pool::Pool(std::size_t threads, std::function<void(std::exception_ptr)> on_error,
           std::size_t max_queue)
    : impl_(new Impl) {
    impl_->on_error = std::move(on_error);
    impl_->max_queue = max_queue;
    if (threads == 0) threads = 1;
    impl_->workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

Pool::~Pool() {
    shutdown();
    delete impl_;
}

bool Pool::submit(std::function<void()> job) {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->stopping || impl_->draining) return false;
        if (impl_->max_queue > 0 && impl_->queue.size() >= impl_->max_queue)
            return false;  // bounded queue full: the caller sheds explicitly
        impl_->queue.push_back(std::move(job));
    }
    impl_->cv.notify_one();
    return true;
}

void Pool::shutdown() {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->stopping) {
            // Second caller: workers are already stopping; fall through to
            // join below only from the thread that owns the joinable handles.
        }
        impl_->stopping = true;
    }
    impl_->cv.notify_all();
    for (std::thread& t : impl_->workers)
        if (t.joinable()) t.join();
    impl_->workers.clear();
}

void Pool::drain() {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->stopping) return;  // shutdown already dropped the queue
        impl_->draining = true;
    }
    impl_->cv.notify_all();
    for (std::thread& t : impl_->workers)
        if (t.joinable()) t.join();
    impl_->workers.clear();
    // The pool is finished: later submit()/shutdown() calls are cheap no-ops.
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
}

std::size_t Pool::threads() const noexcept { return impl_->workers.size(); }

std::size_t Pool::depth() const {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->queue.size();
}

std::size_t Pool::active() const {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->running;
}

}  // namespace hap::parallel
