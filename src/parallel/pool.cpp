#include "parallel/pool.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hap::parallel {

// Plain std::mutex, not the annotated core::Mutex: the workers block on a
// condition variable, and neither std::unique_lock nor condition_variable
// carries thread-safety-analysis attributes in libstdc++, so annotating this
// file would only force blanket opt-outs. Nothing here is reachable without
// the lock; the structure is the textbook one-queue/one-cv pool.
struct Pool::Impl {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stopping = false;
    std::vector<std::thread> workers;
    std::function<void(std::exception_ptr)> on_error;

    void worker_loop() {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] { return stopping || !queue.empty(); });
                if (stopping) return;  // pending jobs are dropped by contract
                job = std::move(queue.front());
                queue.pop_front();
            }
            try {
                job();
            } catch (...) {
                if (on_error) on_error(std::current_exception());
            }
        }
    }
};

Pool::Pool(std::size_t threads, std::function<void(std::exception_ptr)> on_error)
    : impl_(new Impl) {
    impl_->on_error = std::move(on_error);
    if (threads == 0) threads = 1;
    impl_->workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

Pool::~Pool() {
    shutdown();
    delete impl_;
}

bool Pool::submit(std::function<void()> job) {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->stopping) return false;
        impl_->queue.push_back(std::move(job));
    }
    impl_->cv.notify_one();
    return true;
}

void Pool::shutdown() {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->stopping) {
            // Second caller: workers are already stopping; fall through to
            // join below only from the thread that owns the joinable handles.
        }
        impl_->stopping = true;
    }
    impl_->cv.notify_all();
    for (std::thread& t : impl_->workers)
        if (t.joinable()) t.join();
    impl_->workers.clear();
}

std::size_t Pool::threads() const noexcept { return impl_->workers.size(); }

}  // namespace hap::parallel
